// Per-layer isolation tests for session and presentation: each layer driven
// directly by user modules with a raw channel below it (no full stack), so
// state transitions and PDU emissions can be asserted one hop at a time.
#include <gtest/gtest.h>

#include "estelle/executor.hpp"
#include "osi/presentation.hpp"
#include "osi/session.hpp"

namespace mcam::osi {
namespace {

using common::Bytes;
using estelle::Attribute;
using estelle::Interaction;
using estelle::InteractionPoint;
using estelle::Module;
using estelle::make_executor;
using estelle::Specification;

/// One session entity with a user module above and a "wire probe" module
/// below (stands in for the transport service; the test plays transport).
struct SessionRig {
  Specification spec{"sess"};
  SessionModule* session;
  Module* user;
  Module* wire;

  SessionRig() {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    session = &sys.create_child<SessionModule>("session");
    user = &sys.create_child<Module>("user", Attribute::Process);
    wire = &sys.create_child<Module>("wire", Attribute::Process);
    estelle::connect(user->ip("svc"), session->upper());
    estelle::connect(wire->ip("tp"), session->lower());
    spec.initialize();
  }

  InteractionPoint& up() { return user->ip("svc"); }
  InteractionPoint& down() { return wire->ip("tp"); }
};

TEST(SessionLayer, InitiatorEmitsTConThenCn) {
  SessionRig rig;
  auto sched = make_executor(rig.spec);
  rig.up().output(Interaction(kSConReq, common::to_bytes("cp-bytes")));
  sched->run();

  // First the transport connect request...
  ASSERT_TRUE(rig.down().has_input());
  EXPECT_EQ(rig.down().pop().kind, kTConReq);
  EXPECT_EQ(rig.session->state(), SessionModule::kWaitTCon);

  // ...then, after T-CONNECT confirm, the CN SPDU carrying the user data.
  rig.down().output(Interaction(kTConConf));
  sched->run();
  ASSERT_TRUE(rig.down().has_input());
  Interaction cn = rig.down().pop();
  EXPECT_EQ(cn.kind, kTDatReq);
  const SpduView spdu = parse_spdu(cn.payload);
  EXPECT_EQ(spdu.type, Spdu::CN);
  EXPECT_EQ(spdu.user_data, common::to_bytes("cp-bytes"));
  EXPECT_EQ(rig.session->state(), SessionModule::kWaitAC);
}

TEST(SessionLayer, ResponderIndicatesAndAccepts) {
  SessionRig rig;
  auto sched = make_executor(rig.spec);
  rig.down().output(
      Interaction(kTDatInd, build_spdu(Spdu::CN, common::to_bytes("x"))));
  sched->run();
  ASSERT_TRUE(rig.up().has_input());
  Interaction ind = rig.up().pop();
  EXPECT_EQ(ind.kind, kSConInd);
  EXPECT_EQ(ind.payload, common::to_bytes("x"));
  EXPECT_EQ(rig.session->state(), SessionModule::kConnInd);

  rig.up().output(Interaction(kSConResp, asn1::Value::boolean(true),
                              common::to_bytes("y")));
  sched->run();
  ASSERT_TRUE(rig.down().has_input());
  const SpduView ac = parse_spdu(rig.down().pop().payload);
  EXPECT_EQ(ac.type, Spdu::AC);
  EXPECT_EQ(ac.user_data, common::to_bytes("y"));
  EXPECT_EQ(rig.session->state(), SessionModule::kOpen);
}

TEST(SessionLayer, ResponderRefusesWithRf) {
  SessionRig rig;
  auto sched = make_executor(rig.spec);
  rig.down().output(Interaction(kTDatInd, build_spdu(Spdu::CN, {})));
  sched->run();
  (void)rig.up().pop();
  rig.up().output(Interaction(kSConResp, asn1::Value::boolean(false),
                              common::to_bytes("no")));
  sched->run();
  ASSERT_TRUE(rig.down().has_input());
  EXPECT_EQ(parse_spdu(rig.down().pop().payload).type, Spdu::RF);
  EXPECT_EQ(rig.session->state(), SessionModule::kIdle);
}

TEST(SessionLayer, AbortFromEitherSide) {
  SessionRig rig;
  auto sched = make_executor(rig.spec);
  // Bring it to open via the responder path.
  rig.down().output(Interaction(kTDatInd, build_spdu(Spdu::CN, {})));
  sched->run();
  (void)rig.up().pop();
  rig.up().output(Interaction(kSConResp, asn1::Value::boolean(true)));
  sched->run();
  (void)rig.down().pop();  // AC
  ASSERT_EQ(rig.session->state(), SessionModule::kOpen);

  // Peer abort (AB SPDU) surfaces as S-ABORT indication.
  rig.down().output(Interaction(kTDatInd, build_spdu(Spdu::AB, {})));
  sched->run();
  ASSERT_TRUE(rig.up().has_input());
  EXPECT_EQ(rig.up().pop().kind, kSAbortInd);
  EXPECT_EQ(rig.session->state(), SessionModule::kIdle);
}

TEST(SessionLayer, TransportFailureAbortsOpenSession) {
  SessionRig rig;
  auto sched = make_executor(rig.spec);
  rig.down().output(Interaction(kTDatInd, build_spdu(Spdu::CN, {})));
  sched->run();
  (void)rig.up().pop();
  rig.up().output(Interaction(kSConResp, asn1::Value::boolean(true)));
  sched->run();
  (void)rig.down().pop();

  rig.down().output(Interaction(kTDisInd));
  sched->run();
  ASSERT_TRUE(rig.up().has_input());
  EXPECT_EQ(rig.up().pop().kind, kSAbortInd);
  EXPECT_EQ(rig.session->state(), SessionModule::kIdle);
}

// ---------------------------------------------------------------------------

/// Presentation entity over a probe that plays the session service.
struct PresRig {
  Specification spec{"pres"};
  PresentationModule* pres;
  Module* user;
  Module* wire;

  PresRig() {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    pres = &sys.create_child<PresentationModule>("pres");
    user = &sys.create_child<Module>("user", Attribute::Process);
    wire = &sys.create_child<Module>("wire", Attribute::Process);
    estelle::connect(user->ip("svc"), pres->upper());
    estelle::connect(wire->ip("ss"), pres->lower());
    spec.initialize();
  }
  InteractionPoint& up() { return user->ip("svc"); }
  InteractionPoint& down() { return wire->ip("ss"); }
};

TEST(PresentationLayer, ConnectCarriesCpWithContextList) {
  PresRig rig;
  auto sched = make_executor(rig.spec);
  rig.up().output(Interaction(kPConReq, common::to_bytes("user-data")));
  sched->run();
  ASSERT_TRUE(rig.down().has_input());
  Interaction out = rig.down().pop();
  EXPECT_EQ(out.kind, kSConReq);
  auto cp = parse_ppdu(out.payload);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp.value().type, PpduView::Type::CP);
  EXPECT_EQ(cp.value().context_id, 1);
  EXPECT_EQ(cp.value().user_data, common::to_bytes("user-data"));
  EXPECT_EQ(rig.pres->state(), PresentationModule::kWaitConf);
  EXPECT_TRUE(rig.pres->transfer_syntax().empty());  // not negotiated yet
}

TEST(PresentationLayer, CpaCompletesNegotiation) {
  PresRig rig;
  auto sched = make_executor(rig.spec);
  rig.up().output(Interaction(kPConReq, Bytes{}));
  sched->run();
  (void)rig.down().pop();
  rig.down().output(
      Interaction(kSConConf, build_cpa(1, common::to_bytes("welcome"))));
  sched->run();
  ASSERT_TRUE(rig.up().has_input());
  Interaction conf = rig.up().pop();
  EXPECT_EQ(conf.kind, kPConConf);
  EXPECT_EQ(conf.payload, common::to_bytes("welcome"));
  EXPECT_EQ(rig.pres->transfer_syntax(), oids::kBerTransferSyntax);
  EXPECT_EQ(rig.pres->state(), PresentationModule::kOpen);
}

TEST(PresentationLayer, CprMeansRefusal) {
  PresRig rig;
  auto sched = make_executor(rig.spec);
  rig.up().output(Interaction(kPConReq, Bytes{}));
  sched->run();
  (void)rig.down().pop();
  rig.down().output(
      Interaction(kSConConf, build_cpr(2, common::to_bytes("denied"))));
  sched->run();
  ASSERT_TRUE(rig.up().has_input());
  Interaction refused = rig.up().pop();
  EXPECT_EQ(refused.kind, kPConRefuse);
  EXPECT_EQ(refused.payload, common::to_bytes("denied"));
  EXPECT_EQ(rig.pres->state(), PresentationModule::kIdle);
}

TEST(PresentationLayer, DataWrappedInTd) {
  PresRig rig;
  auto sched = make_executor(rig.spec);
  // Open via responder path.
  rig.down().output(Interaction(kSConInd, build_cp(1, {})));
  sched->run();
  (void)rig.up().pop();
  rig.up().output(Interaction(kPConResp, asn1::Value::boolean(true)));
  sched->run();
  (void)rig.down().pop();  // CPA
  ASSERT_EQ(rig.pres->state(), PresentationModule::kOpen);

  rig.up().output(Interaction(kPDatReq, common::to_bytes("mcam-pdu")));
  sched->run();
  ASSERT_TRUE(rig.down().has_input());
  auto td = parse_ppdu(rig.down().pop().payload);
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(td.value().type, PpduView::Type::TD);
  EXPECT_EQ(td.value().user_data, common::to_bytes("mcam-pdu"));

  // Non-TD garbage on the session service is ignored, not crashed on.
  rig.down().output(Interaction(kSDatInd, common::to_bytes("junk")));
  sched->run();
  EXPECT_FALSE(rig.up().has_input());
}

TEST(PresentationLayer, UserAbortCascadesDown) {
  PresRig rig;
  auto sched = make_executor(rig.spec);
  rig.down().output(Interaction(kSConInd, build_cp(1, {})));
  sched->run();
  (void)rig.up().pop();
  rig.up().output(Interaction(kPConResp, asn1::Value::boolean(true)));
  sched->run();
  (void)rig.down().pop();

  rig.up().output(Interaction(kPAbortReq));
  sched->run();
  ASSERT_TRUE(rig.down().has_input());
  EXPECT_EQ(rig.down().pop().kind, kSAbortReq);
  EXPECT_EQ(rig.pres->state(), PresentationModule::kIdle);
}

}  // namespace
}  // namespace mcam::osi
