// Conflict analysis and sharded-runtime semantics:
//   * shard assignment (one shard per system module, uniprocessor flag,
//     dynamic membership refresh);
//   * cross-shard channel detection — legal, mailbox-mediated;
//   * conflict classification: a spec with two system modules sharing a
//     channel observed by a provided guard is conflicting, as is a loss Rng
//     shared across shards; the Fig. 2 testbed configuration is
//     conflict-free;
//   * the two-phase transfer mailbox itself;
//   * ThreadedScheduler conflict-set revalidation: a deliberately
//     ill-formed spec no longer produces traces divergent from the
//     sequential scheduler, and channel-sharing modules with shared opaque
//     state are serialized (the property the CI ThreadSanitizer job pins).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/trace.hpp"
#include "mcam/testbed.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

TEST(ConflictAnalysisTest, ShardPerSystemModuleHonoringUniprocessorHost) {
  Specification spec("s");
  auto& client =
      spec.root().create_child<Module>("client", Attribute::SystemProcess);
  client.set_uniprocessor_host(true);
  auto& server =
      spec.root().create_child<Module>("server", Attribute::SystemProcess);
  auto& conn = server.create_child<Module>("conn", Attribute::Process);
  auto& leaf = conn.create_child<Module>("leaf", Attribute::Process);
  spec.initialize();

  ConflictAnalysis analysis(spec);
  ASSERT_EQ(analysis.shard_count(), 2);
  EXPECT_EQ(analysis.shards()[0].system_module, &client);
  EXPECT_TRUE(analysis.shards()[0].uniprocessor_host);
  EXPECT_EQ(analysis.shards()[1].system_module, &server);
  EXPECT_FALSE(analysis.shards()[1].uniprocessor_host);
  // The whole subtree shares the system module's shard — which is exactly
  // what honors uniprocessor_host(): no backend can split a host.
  EXPECT_EQ(analysis.shard_of(client), 0);
  EXPECT_EQ(analysis.shard_of(server), 1);
  EXPECT_EQ(analysis.shard_of(conn), 1);
  EXPECT_EQ(analysis.shard_of(leaf), 1);
  EXPECT_EQ(analysis.shard_of(spec.root()), kNoShard);
  EXPECT_EQ(analysis.shards()[1].modules.size(), 3u);
  EXPECT_TRUE(analysis.conflict_free());
}

TEST(ConflictAnalysisTest, RefreshTracksDynamicMembership) {
  Specification spec("dyn");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  spec.initialize();
  ConflictAnalysis analysis(spec);
  EXPECT_EQ(analysis.shards()[0].modules.size(), 1u);

  auto& child = sys.create_child<Module>("late", Attribute::Process);
  // adopt() already stamped the parent's shard (routing stays correct
  // before any refresh)...
  EXPECT_EQ(child.shard(), 0);
  // ...and refresh() folds the new module into the shard table.
  analysis.refresh();
  EXPECT_EQ(analysis.shards()[0].modules.size(), 2u);
  EXPECT_FALSE(analysis.modules_conflict(sys, child));  // no shared channel
}

TEST(ConflictAnalysisTest, PlainCrossShardChannelIsMediatedNotConflicting) {
  Specification spec("pipe");
  auto& a = spec.root().create_child<Module>("a", Attribute::SystemProcess);
  auto& b = spec.root().create_child<Module>("b", Attribute::SystemProcess);
  connect(a.ip("x"), b.ip("x"));
  a.trans("send").from(0).to(1).action([&a](Module&, const Interaction*) {
    a.ip("x").output(Interaction(1));
  });
  b.trans("recv").when(b.ip("x")).action([](Module&, const Interaction*) {});
  spec.initialize();

  ConflictAnalysis analysis(spec);
  ASSERT_EQ(analysis.cross_shard_channels().size(), 1u);
  EXPECT_NE(analysis.cross_shard_channels()[0].shard_a,
            analysis.cross_shard_channels()[0].shard_b);
  // The channel crosses shards but nothing observes it outside the mailbox
  // discipline: legal, conflict-free.
  EXPECT_TRUE(analysis.conflict_free());
  // Round-level granularity stays conservative: candidates of the two
  // endpoint owners are serialized by the threaded backend.
  EXPECT_TRUE(analysis.modules_conflict(a, b));
}

TEST(ConflictAnalysisTest, SystemModulesSharingGuardedChannelConflict) {
  // Two system modules share a channel, and the consumer guards its end
  // with a provided clause (which may observe the queue the producer
  // appends to mid-round): the canonical conflicting specification.
  Specification spec("ill");
  auto& a = spec.root().create_child<Module>("a", Attribute::SystemProcess);
  auto& b = spec.root().create_child<Module>("b", Attribute::SystemProcess);
  connect(a.ip("x"), b.ip("x"));
  a.trans("send").from(0).to(1).action([&a](Module&, const Interaction*) {
    a.ip("x").output(Interaction(1));
  });
  b.trans("burst")
      .when(b.ip("x"))
      .provided([&b](Module&, const Interaction*) {
        return b.ip("x").queue_length() >= 2;
      })
      .action([](Module&, const Interaction*) {});
  spec.initialize();

  ConflictAnalysis analysis(spec);
  ASSERT_FALSE(analysis.conflict_free());
  EXPECT_EQ(analysis.conflicts()[0].kind,
            ChannelConflict::Kind::GuardedCrossShardQueue);
  EXPECT_NE(analysis.to_string().find("guarded-cross-shard-queue"),
            std::string::npos);
}

TEST(ConflictAnalysisTest, LossRngSharedAcrossShardsConflicts) {
  Specification spec("lossy");
  auto& a = spec.root().create_child<Module>("a", Attribute::SystemProcess);
  auto& b = spec.root().create_child<Module>("b", Attribute::SystemProcess);
  connect(a.ip("x"), b.ip("x"));
  common::Rng shared(7);
  a.ip("x").set_loss(0.1, &shared);
  b.ip("x").set_loss(0.1, &shared);
  spec.initialize();

  ConflictAnalysis analysis(spec);
  ASSERT_FALSE(analysis.conflict_free());
  EXPECT_EQ(analysis.conflicts()[0].kind,
            ChannelConflict::Kind::SharedLossRng);
  EXPECT_TRUE(analysis.modules_conflict(a, b));
}

TEST(ConflictAnalysisTest, Fig2TestbedConfigurationIsConflictFree) {
  // The paper's Fig. 2 world: two client workstations, two control
  // connections each, Estelle-generated stacks, transports joined across
  // the client/server boundary. Channels cross shards (that is the point),
  // but every cross-shard queue is consumed unguarded — conflict-free, so
  // every backend owes it the identical firing trace.
  core::Testbed::Config cfg;
  cfg.clients = 2;
  cfg.connections_per_client = 2;
  core::Testbed bed(cfg);

  ConflictAnalysis analysis(bed.spec());
  EXPECT_EQ(analysis.shard_count(), 3);  // server + 2 client machines
  EXPECT_FALSE(analysis.cross_shard_channels().empty());
  EXPECT_TRUE(analysis.conflict_free()) << analysis.to_string();
  // Clients are uniprocessor workstations (§3), the server is not.
  int uniprocessors = 0;
  for (const ShardInfo& s : analysis.shards())
    uniprocessors += s.uniprocessor_host ? 1 : 0;
  EXPECT_EQ(uniprocessors, 2);
}

TEST(TransferMailboxTest, CrossShardDeliveryIsTwoPhase) {
  Specification spec("mb");
  auto& a = spec.root().create_child<Module>("a", Attribute::SystemProcess);
  auto& b = spec.root().create_child<Module>("b", Attribute::SystemProcess);
  connect(a.ip("x"), b.ip("x"));
  spec.initialize();
  ConflictAnalysis analysis(spec);  // stamps shard ids: a=0, b=1
  ASSERT_EQ(b.shard(), 1);

  {
    // Outputs from shard 0's execution context to shard 1 park in the
    // transfer mailbox instead of the inbox.
    ShardExecutionScope scope(0, SimTime::from_us(42));
    a.ip("x").output(Interaction(1));
    a.ip("x").output(Interaction(2));
    EXPECT_EQ(b.ip("x").queue_length(), 0u);
    EXPECT_TRUE(b.ip("x").has_pending_transfers());

    // Same-shard delivery stays a plain deque append.
    b.ip("x").output(Interaction(9));  // b -> a, but we are shard 0
    EXPECT_EQ(a.ip("x").queue_length(), 1u);
  }

  // Drain moves everything in transfer order and reports the watermark.
  SimTime watermark{};
  EXPECT_EQ(b.ip("x").drain_transfers(&watermark), 2u);
  EXPECT_EQ(watermark, SimTime::from_us(42));
  EXPECT_FALSE(b.ip("x").has_pending_transfers());
  ASSERT_EQ(b.ip("x").queue_length(), 2u);
  EXPECT_EQ(b.ip("x").pop().kind, 1);
  EXPECT_EQ(b.ip("x").pop().kind, 2);

  // Outside any shard scope, delivery is direct (injection, tests, commit).
  a.ip("x").output(Interaction(3));
  EXPECT_EQ(b.ip("x").queue_length(), 1u);
}

/// Deliberately ill-formed world: a producer streams tokens while the
/// consumer's guards observe the queue length, so a same-round producer
/// firing flips which consumer transition is fireable. Without conflict-set
/// revalidation the threaded backend fires both candidates against the
/// round-start snapshot and diverges from the sequential scheduler.
struct IllFormed {
  Specification spec{"illformed"};
  Module* producer = nullptr;
  Module* consumer = nullptr;
  int sent = 0;
  int singles = 0;
  int pairs = 0;

  IllFormed() {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    producer = &sys.create_child<Module>("producer", Attribute::Process);
    consumer = &sys.create_child<Module>("consumer", Attribute::Process);
    connect(producer->ip("out"), consumer->ip("in"));
    producer->trans("send")
        .cost(SimTime::from_us(4))
        .provided([this](Module&, const Interaction*) { return sent < 12; })
        .action([this](Module&, const Interaction*) {
          ++sent;
          producer->ip("out").output(Interaction(sent));
        });
    auto& in = consumer->ip("in");
    consumer->trans("pair")
        .when(in)
        .cost(SimTime::from_us(4))
        .provided([this](Module&, const Interaction*) {
          return consumer->ip("in").queue_length() >= 2;
        })
        .action([this](Module&, const Interaction*) {
          ++pairs;
          (void)consumer->ip("in").pop();  // consume the second of the pair
        });
    // Guarded on "exactly one queued": a same-round producer delivery
    // disables it, which only revalidation can notice.
    consumer->trans("single")
        .when(in)
        .priority(1)
        .cost(SimTime::from_us(4))
        .provided([this](Module&, const Interaction*) {
          return consumer->ip("in").queue_length() == 1;
        })
        .action([this](Module&, const Interaction*) { ++singles; });
    spec.initialize();
  }
};

TEST(ThreadedConflictRevalidation, IllFormedSpecNoLongerDiverges) {
  const auto run_kind = [](ExecutorKind kind) {
    IllFormed world;
    TraceRecorder trace;
    make_executor(world.spec, {.kind = kind, .threads = 4})
        ->run({.observers = {&trace}});
    return std::make_tuple(trace.transition_names(), world.singles,
                           world.pairs);
  };

  const auto seq = run_kind(ExecutorKind::Sequential);
  ASSERT_FALSE(std::get<0>(seq).empty());
  EXPECT_GT(std::get<2>(seq), 0);  // the pair path is actually exercised
  // The producer and consumer share a channel, so the threaded backend
  // serializes them with revalidation and immediate delivery — the
  // sequential discipline, hence the identical trace.
  EXPECT_EQ(run_kind(ExecutorKind::Threaded), seq);
  // The sharded backend applies the same revalidation inside the shard's
  // serial round, so the world ends in the identical state; its *announced*
  // trace may include candidates revalidation then skipped (announcement
  // precedes worker execution), so only the outcome is compared.
  const auto shd = run_kind(ExecutorKind::Sharded);
  EXPECT_EQ(std::get<1>(shd), std::get<1>(seq));
  EXPECT_EQ(std::get<2>(shd), std::get<2>(seq));
}

TEST(ThreadedConflictRevalidation, ChannelSharingModulesAreSerialized) {
  // Two modules share a channel AND mutate one unprotected counter from
  // their actions. Because they share the channel, the conflict sets
  // intersect and the threaded backend never runs them concurrently: the
  // counter ends exactly at the sequential value (and the CI TSan job sees
  // no race). This is the Estelle contract in miniature — modules that
  // share state must share a channel for the runtime to serialize them.
  const auto run_kind = [](ExecutorKind kind) {
    Specification spec("racy");
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    auto& a = sys.create_child<Module>("a", Attribute::Process);
    auto& b = sys.create_child<Module>("b", Attribute::Process);
    connect(a.ip("x"), b.ip("x"));
    auto counter = std::make_shared<long>(0);
    const auto bump = [counter](Module&, const Interaction*) {
      *counter = *counter + 1;  // unprotected read-modify-write
    };
    int rounds_a = 0;
    int rounds_b = 0;
    a.trans("a").provided([&rounds_a](Module&, const Interaction*) {
       return rounds_a < 400;
     }).action([&, bump](Module& m, const Interaction* i) {
      ++rounds_a;
      bump(m, i);
    });
    b.trans("b").provided([&rounds_b](Module&, const Interaction*) {
       return rounds_b < 400;
     }).action([&, bump](Module& m, const Interaction* i) {
      ++rounds_b;
      bump(m, i);
    });
    spec.initialize();
    make_executor(spec, {.kind = kind, .threads = 4})->run();
    return *counter;
  };

  EXPECT_EQ(run_kind(ExecutorKind::Sequential), 800);
  EXPECT_EQ(run_kind(ExecutorKind::Threaded), 800);
}

TEST(ShardedDelayClauses, IdleShardTimerFiresWhileOtherShardIsBusy) {
  // Shard A holds only a delay transition; shard B grinds through a long
  // spontaneous workload. A's clock must be pulled up to the executor clock
  // every epoch so the timer matures interleaved with B's work — not only
  // at global quiescence.
  Specification spec("timer");
  auto& a = spec.root().create_child<Module>("a", Attribute::SystemProcess);
  auto& b = spec.root().create_child<Module>("b", Attribute::SystemProcess);
  bool timer_fired = false;
  a.trans("timeout")
      .from(0)
      .to(1)
      .delay(SimTime::from_us(100))
      .action([&timer_fired](Module&, const Interaction*) {
        timer_fired = true;
      });
  int busy_rounds = 0;
  b.trans("grind")
      .cost(SimTime::from_us(50))
      .provided([&busy_rounds](Module&, const Interaction*) {
        return busy_rounds < 40;  // ~2000us of shard-B work
      })
      .action([&busy_rounds](Module&, const Interaction*) { ++busy_rounds; });
  spec.initialize();

  auto executor =
      make_executor(spec, {.kind = ExecutorKind::Sharded, .threads = 2});
  executor->run_until([&] { return timer_fired; });
  EXPECT_TRUE(timer_fired);
  // The timer fired shortly after 100us of virtual time, while B was still
  // busy — far before B's ~2000us workload completes.
  EXPECT_LT(executor->now(), SimTime::from_us(1000));
  EXPECT_LT(busy_rounds, 40);
}

TEST(ShardedOnConflictingSpec, DegradesToSerialButStaysCorrect) {
  // A conflicting spec under the sharded backend degrades to one worker:
  // sharded, mailbox-routed, serialized — and therefore still correct.
  Specification spec("degraded");
  auto& a = spec.root().create_child<Module>("a", Attribute::SystemProcess);
  auto& b = spec.root().create_child<Module>("b", Attribute::SystemProcess);
  connect(a.ip("x"), b.ip("x"));
  int sent = 0;
  int got = 0;
  a.trans("send")
      .provided([&sent](Module&, const Interaction*) { return sent < 20; })
      .action([&](Module&, const Interaction*) {
        ++sent;
        a.ip("x").output(Interaction(sent));
      });
  b.trans("recv")
      .when(b.ip("x"))
      .provided([&b](Module&, const Interaction*) {
        return b.ip("x").queue_length() >= 1;  // guard on a cross-shard queue
      })
      .action([&got](Module&, const Interaction*) { ++got; });
  spec.initialize();

  auto executor =
      make_executor(spec, {.kind = ExecutorKind::Sharded, .threads = 4});
  executor->run();
  EXPECT_EQ(sent, 20);
  EXPECT_EQ(got, 20);
}

}  // namespace
}  // namespace mcam::estelle
