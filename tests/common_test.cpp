// Tests for the shared substrate: byte readers/writers, RNG determinism,
// Result, simulated time.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/strf.hpp"

namespace mcam::common {
namespace {

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  w.str("hello");
  Bytes buf = std::move(w).take();
  ASSERT_EQ(buf.size(), 1u + 2 + 4 + 8 + 5);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.str(5), "hello");
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, ReaderThrowsOnShortRead) {
  Bytes buf = {1, 2};
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_THROW(r.u8(), ShortReadError);
  EXPECT_THROW(ByteReader(buf).u32(), ShortReadError);
  EXPECT_THROW(ByteReader(buf).raw(3), ShortReadError);
}

TEST(Bytes, BigEndianOrder) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(Bytes, HexdumpTruncates) {
  Bytes big(100, 0xff);
  const std::string dump = hexdump(big, 4);
  EXPECT_NE(dump.find("ff ff ff ff"), std::string::npos);
  EXPECT_NE(dump.find("100 bytes"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Result, ValueAndError) {
  Result<int> ok_value(5);
  EXPECT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value(), 5);
  EXPECT_EQ(ok_value.value_or(9), 5);

  Result<int> err(Error::make(3, "boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, 3);
  EXPECT_EQ(err.value_or(9), 9);
  EXPECT_THROW((void)err.value(), std::logic_error);
}

TEST(Result, StatusBehaviour) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_THROW((void)ok.error(), std::logic_error);
  Status bad(Error::make(1, "x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "x");
}

TEST(SimTime, ArithmeticAndConversions) {
  const SimTime a = SimTime::from_ms(3);
  const SimTime b = SimTime::from_us(500);
  EXPECT_EQ((a + b).ns, 3'500'000);
  EXPECT_EQ((a - b).ns, 2'500'000);
  EXPECT_DOUBLE_EQ(a.millis(), 3.0);
  EXPECT_DOUBLE_EQ(b.micros(), 500.0);
  EXPECT_LT(b, a);
}

TEST(SimClock, NeverGoesBackwards) {
  SimClock clock;
  clock.advance_to(SimTime::from_ms(10));
  clock.advance_to(SimTime::from_ms(5));
  EXPECT_EQ(clock.now(), SimTime::from_ms(10));
  clock.advance_by(SimTime::from_ms(1));
  EXPECT_EQ(clock.now(), SimTime::from_ms(11));
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s-%.1f", 5, "x", 2.5), "5-x-2.5");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration(SimTime::from_ns(12)), "12 ns");
  EXPECT_NE(format_duration(SimTime::from_us(15)).find("us"),
            std::string::npos);
  EXPECT_NE(format_duration(SimTime::from_ms(15)).find("ms"),
            std::string::npos);
  EXPECT_NE(format_duration(SimTime::from_s(15)).find(" s"),
            std::string::npos);
}

}  // namespace
}  // namespace mcam::common
