// MetricsObserver: per-module firing counts and the firing-gap histogram,
// published into RunReport from the on_report hook.
#include <gtest/gtest.h>

#include <numeric>

#include "estelle/metrics.hpp"
#include "estelle/module.hpp"

namespace mcam::estelle {
namespace {

using common::SimTime;

struct TickWorld {
  Specification spec{"ticks"};
  Module* fast = nullptr;
  Module* slow = nullptr;

  TickWorld() {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    fast = &sys.create_child<Module>("fast", Attribute::Process);
    slow = &sys.create_child<Module>("slow", Attribute::Process);
    const auto counting = [](int limit) {
      return [limit](Module& m, const Interaction*) {
        return m.state() < limit;
      };
    };
    fast->trans("tick")
        .cost(SimTime::from_us(10))
        .provided(counting(8))
        .action([](Module& m, const Interaction*) {
          m.set_state(m.state() + 1);
        });
    slow->trans("tock")
        .cost(SimTime::from_us(10))
        .provided(counting(3))
        .action([](Module& m, const Interaction*) {
          m.set_state(m.state() + 1);
        });
    spec.initialize();
  }
};

TEST(MetricsObserverTest, CountsPerModuleAndPublishesIntoReport) {
  TickWorld world;
  MetricsObserver metrics;
  auto executor = make_executor(world.spec);
  const RunReport report = executor->run({.observers = {&metrics}});

  EXPECT_EQ(metrics.total_fired(), report.fired);
  EXPECT_EQ(metrics.fired_by("spec:ticks.sys.fast"), 8u);
  EXPECT_EQ(metrics.fired_by("spec:ticks.sys.slow"), 3u);
  EXPECT_EQ(metrics.fired_by("spec:ticks.sys.never"), 0u);

  // on_report published the snapshot into the RunReport itself.
  ASSERT_EQ(report.module_metrics.size(), 2u);
  EXPECT_EQ(report.module_metrics[0].module_path, "spec:ticks.sys.fast");
  EXPECT_EQ(report.module_metrics[0].fired, 8u);
  EXPECT_GT(report.module_metrics[0].mean_gap.ns, 0);
  EXPECT_EQ(report.module_metrics[1].fired, 3u);

  // Histogram: one gap per consecutive same-module pair.
  const std::uint64_t gaps =
      std::accumulate(report.firing_gap_histogram.begin(),
                      report.firing_gap_histogram.end(), std::uint64_t{0});
  EXPECT_EQ(gaps, (8u - 1) + (3u - 1));
  EXPECT_NE(metrics.to_string().find("fast"), std::string::npos);
}

TEST(MetricsObserverTest, PersistentAttachmentAggregatesAcrossRuns) {
  TickWorld world;
  MetricsObserver metrics;
  auto executor = make_executor(world.spec);
  executor->add_run_observer(&metrics);

  executor->run();
  EXPECT_EQ(metrics.total_fired(), 11u);

  // Re-arm and pump again: the same observer keeps aggregating, and every
  // report of this executor carries the cumulative metrics.
  world.fast->set_state(0);
  const RunReport second = executor->run();
  EXPECT_EQ(metrics.total_fired(), 19u);
  ASSERT_FALSE(second.module_metrics.empty());
  EXPECT_EQ(second.module_metrics[0].fired, 16u);

  metrics.clear();
  EXPECT_EQ(metrics.total_fired(), 0u);
}

TEST(MetricsObserverTest, ThreadedBackendHonorsWorkerCountOptions) {
  // The Threaded backend used to spawn a hard-coded number of threads per
  // round; it now sizes a persistent pool from ExecutorConfig::threads
  // (0 ⇒ hardware_concurrency()) with RunOptions::worker_count overriding
  // per run — and the metrics must be identical whatever the width, because
  // announcements stay on the run thread.
  TickWorld world;
  auto executor =
      make_executor(world.spec, {.kind = ExecutorKind::Threaded});
  EXPECT_EQ(executor->unit_count(), resolve_worker_count(0));

  MetricsObserver metrics;
  executor->run({.observers = {&metrics}, .worker_count = 3});
  EXPECT_EQ(executor->unit_count(), 3);  // pool resized for this run
  EXPECT_EQ(metrics.total_fired(), 11u);
  EXPECT_EQ(metrics.fired_by("spec:ticks.sys.fast"), 8u);
  EXPECT_EQ(metrics.fired_by("spec:ticks.sys.slow"), 3u);

  // Explicit config width; a run without an override restores it.
  TickWorld world2;
  auto executor2 = make_executor(
      world2.spec, {.kind = ExecutorKind::Threaded, .threads = 2});
  EXPECT_EQ(executor2->unit_count(), 2);
  MetricsObserver metrics2;
  executor2->run({.observers = {&metrics2}});
  EXPECT_EQ(executor2->unit_count(), 2);
  EXPECT_EQ(metrics2.total_fired(), 11u);
}

TEST(MetricsObserverTest, ReportsEmptyWithoutObserver) {
  TickWorld world;
  const RunReport report = make_executor(world.spec)->run();
  EXPECT_TRUE(report.module_metrics.empty());
  EXPECT_TRUE(report.firing_gap_histogram.empty());
}

}  // namespace
}  // namespace mcam::estelle
