// FaultPlan / FaultInjectingTransport (transport/fault_transport.hpp): the
// seeded fault machinery the recovery suites lean on.
//
// Pinned here:
//   * FaultPlan::seeded is a pure function of its seed — the same seed
//     always derives the same schedule (a failing differential seed is
//     replayable verbatim), different seeds diverge, and the close_after
//     entry is present wherever it lands relative to the horizon;
//   * the decorator applies a schedule deterministically over a live
//     transport: Drop consumes the frame, Duplicate delivers it twice,
//     Delay reorders it past later sends but flush() never strands it,
//     Close severs the wrapped link right after the frame leaves;
//   * every injected fault is counted in the wrapped transport's
//     TransportStats::faults_injected.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "estelle/transport/fault_transport.hpp"
#include "estelle/transport/transport.hpp"

namespace mcam::estelle {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: the schedule is the seed

TEST(FaultPlan, SameSeedSameSchedule) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FaultPlan a = FaultPlan::seeded(seed, 512, 40, 40, 30, 100);
    const FaultPlan b = FaultPlan::seeded(seed, 512, 40, 40, 30, 100);
    ASSERT_EQ(a.actions.size(), b.actions.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.actions.size(); ++i) {
      EXPECT_EQ(a.actions[i].index, b.actions[i].index);
      EXPECT_EQ(a.actions[i].kind, b.actions[i].kind);
      EXPECT_EQ(a.actions[i].delay_frames, b.actions[i].delay_frames);
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  // With ~11% fault density over 512 indices, two seeds agreeing on the full
  // schedule would be astronomically unlikely — any divergence counts.
  const FaultPlan a = FaultPlan::seeded(1, 512, 40, 40, 30);
  const FaultPlan b = FaultPlan::seeded(2, 512, 40, 40, 30);
  bool differ = a.actions.size() != b.actions.size();
  for (std::size_t i = 0; !differ && i < a.actions.size(); ++i)
    differ = a.actions[i].index != b.actions[i].index ||
             a.actions[i].kind != b.actions[i].kind;
  EXPECT_TRUE(differ);
}

TEST(FaultPlan, ScheduleRespectsRatesAndClose) {
  const FaultPlan all = FaultPlan::seeded(7, 200, 1000, 0, 0);
  EXPECT_EQ(all.actions.size(), 200u);  // drop rate 1000‰ ⇒ every frame
  for (const FaultAction& a : all.actions) {
    EXPECT_EQ(a.kind, FaultKind::kDrop);
  }
  const FaultPlan none = FaultPlan::seeded(7, 200, 0, 0, 0);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.at(13).kind, FaultKind::kNone);

  // close_after lands as a kClose entry whether inside or past the horizon.
  const FaultPlan inside = FaultPlan::seeded(7, 200, 0, 0, 0, 50);
  EXPECT_EQ(inside.at(50).kind, FaultKind::kClose);
  const FaultPlan past = FaultPlan::seeded(7, 200, 0, 0, 0, 400);
  EXPECT_EQ(past.at(400).kind, FaultKind::kClose);
}

// ---------------------------------------------------------------------------
// Decorator behavior over a live loopback link

struct Pair {
  LoopbackHub hub{2};
  std::shared_ptr<MailboxTransport> inner0;
  std::unique_ptr<MailboxTransport> ep1;
  std::unique_ptr<FaultInjectingTransport> faulty;  // wraps node 0's endpoint

  Pair() {
    inner0 = std::shared_ptr<MailboxTransport>(hub.endpoint(0));
    ep1 = hub.endpoint(1);
    faulty = std::make_unique<FaultInjectingTransport>(inner0);
  }

  common::Status send_marker(std::uint64_t round) {
    Frame f;
    f.type = FrameType::RoundDone;
    f.node = 0;
    f.round = round;
    return faulty->send(1, f);
  }

  /// Drain node 1's inbound queue, returning the received round markers in
  /// delivery order ("" entries never occur — kClosed ends the drain).
  std::vector<std::uint64_t> drain(bool* closed = nullptr) {
    std::vector<std::uint64_t> rounds;
    Frame in;
    int from = 0;
    std::string err;
    for (;;) {
      const auto rc = ep1->recv(&from, &in, 0, &err);
      if (rc == MailboxTransport::RecvOutcome::kFrame) {
        rounds.push_back(in.round);
        continue;
      }
      if (rc == MailboxTransport::RecvOutcome::kClosed && closed != nullptr)
        *closed = true;
      return rounds;
    }
  }
};

TEST(FaultInjectingTransport, DropConsumesExactlyTheScheduledFrame) {
  Pair p;
  FaultPlan plan;
  plan.actions = {{1, FaultKind::kDrop, 1}};
  p.faulty->set_plan(1, std::move(plan));
  for (std::uint64_t r = 1; r <= 4; ++r)
    ASSERT_TRUE(p.send_marker(r).ok());
  p.faulty->flush();
  EXPECT_EQ(p.drain(), (std::vector<std::uint64_t>{1, 3, 4}));
  EXPECT_EQ(p.faulty->stats().faults_injected, 1u);
}

TEST(FaultInjectingTransport, DuplicateDeliversTwice) {
  Pair p;
  FaultPlan plan;
  plan.actions = {{0, FaultKind::kDuplicate, 1}};
  p.faulty->set_plan(1, std::move(plan));
  ASSERT_TRUE(p.send_marker(1).ok());
  ASSERT_TRUE(p.send_marker(2).ok());
  p.faulty->flush();
  EXPECT_EQ(p.drain(), (std::vector<std::uint64_t>{1, 1, 2}));
  EXPECT_EQ(p.faulty->stats().faults_injected, 1u);
}

TEST(FaultInjectingTransport, DelayReordersButFlushNeverStrands) {
  Pair p;
  FaultPlan plan;
  plan.actions = {{0, FaultKind::kDelay, 2}};  // held past the next 2 sends
  p.faulty->set_plan(1, std::move(plan));
  for (std::uint64_t r = 1; r <= 3; ++r)
    ASSERT_TRUE(p.send_marker(r).ok());
  EXPECT_EQ(p.drain(), (std::vector<std::uint64_t>{2, 3, 1}))
      << "frame 1 must re-enter the stream after its release index";

  // A delayed tail with no subsequent sends leaves at the flush boundary.
  FaultPlan tail;
  tail.actions = {{3, FaultKind::kDelay, 5}};
  p.faulty->set_plan(1, std::move(tail));
  ASSERT_TRUE(p.send_marker(9).ok());
  EXPECT_TRUE(p.drain().empty());
  p.faulty->flush();
  EXPECT_EQ(p.drain(), (std::vector<std::uint64_t>{9}));
  EXPECT_EQ(p.faulty->stats().faults_injected, 2u);
}

TEST(FaultInjectingTransport, CloseSeversTheInnerLinkAfterTheFrame) {
  Pair p;
  FaultPlan plan;
  plan.actions = {{1, FaultKind::kClose, 1}};
  p.faulty->set_plan(1, std::move(plan));
  ASSERT_TRUE(p.send_marker(1).ok());
  (void)p.send_marker(2);  // leaves, then the link dies under it
  p.faulty->flush();
  bool closed = false;
  const std::vector<std::uint64_t> got = p.drain(&closed);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2}))
      << "the close fires after the scheduled frame is on the wire";
  EXPECT_TRUE(closed) << "a severed loopback link must surface kClosed";
  EXPECT_EQ(p.faulty->stats().faults_injected, 1u);
}

TEST(FaultInjectingTransport, SeededScheduleIsDeterministicEndToEnd) {
  // Same seed, same traffic ⇒ byte-identical delivery order, twice.
  const auto run_once = [] {
    Pair p;
    p.faulty->set_plan(1, FaultPlan::seeded(42, 64, 120, 120, 120));
    for (std::uint64_t r = 1; r <= 40; ++r) {
      if (!p.send_marker(r).ok()) break;
    }
    p.faulty->flush();
    return p.drain();
  };
  const std::vector<std::uint64_t> first = run_once();
  const std::vector<std::uint64_t> second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, (std::vector<std::uint64_t>{}));  // something arrived
}

TEST(FaultInjectingTransport, UnplannedPeersPassThroughUntouched) {
  Pair p;  // no plan installed at all
  for (std::uint64_t r = 1; r <= 5; ++r)
    ASSERT_TRUE(p.send_marker(r).ok());
  p.faulty->flush();
  EXPECT_EQ(p.drain(), (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(p.faulty->stats().faults_injected, 0u);
}

}  // namespace
}  // namespace mcam::estelle
