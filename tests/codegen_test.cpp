// Estelle-subset front-end tests: parse, semantic checks, instantiate onto a
// live module, and the rendered "generated code".
#include <gtest/gtest.h>

#include "estelle/codegen.hpp"
#include "estelle/executor.hpp"

namespace mcam::estelle::codegen {
namespace {

constexpr const char* kSessionSpec = R"(
-- A session-layer-like connection machine.
module SessionKernel process;
ip up, down;
state IDLE, WAIT_AC, OPEN;
kind CONreq, CONind, AC, DT;

trans t_conreq from IDLE when up.CONreq to WAIT_AC cost 40us;
trans t_ac     from WAIT_AC when down.AC to OPEN priority 1;
trans t_data   from OPEN when up.DT cost 25us;
trans t_watch  from WAIT_AC delay 500us priority 9 to IDLE;
)";

TEST(CodegenParse, ParsesFullModule) {
  auto spec = parse(kSessionSpec);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  const MachineSpec& m = spec.value();
  EXPECT_EQ(m.module_name, "SessionKernel");
  EXPECT_EQ(m.attribute, Attribute::Process);
  EXPECT_EQ(m.ips, (std::vector<std::string>{"up", "down"}));
  EXPECT_EQ(m.states.size(), 3u);
  EXPECT_EQ(m.kinds.size(), 4u);
  ASSERT_EQ(m.transitions.size(), 4u);

  EXPECT_EQ(m.transitions[0].from_state, "IDLE");
  EXPECT_EQ(m.transitions[0].to_state, "WAIT_AC");
  EXPECT_EQ(m.transitions[0].ip, "up");
  EXPECT_EQ(m.transitions[0].kind, "CONreq");
  EXPECT_EQ(m.transitions[0].cost_us, 40);

  EXPECT_EQ(m.transitions[1].priority, 1);
  EXPECT_EQ(m.transitions[3].delay_us, 500);
  EXPECT_TRUE(m.transitions[3].ip.empty());  // spontaneous

  EXPECT_EQ(m.state_id("OPEN"), 2);
  EXPECT_EQ(m.kind_id("DT"), 3);
  EXPECT_EQ(m.state_id("MISSING"), -2);
}

TEST(CodegenParse, SyntaxErrors) {
  EXPECT_FALSE(parse("modul X process;").ok());
  EXPECT_FALSE(parse("module X zebra;").ok());
  EXPECT_FALSE(parse("module X process; state ;").ok());
  EXPECT_FALSE(parse("module X process; state A; zebra B;").ok());
  EXPECT_FALSE(parse("module X process;").ok());  // no states
}

TEST(CodegenParse, SemanticErrors) {
  // Unknown state in a transition.
  EXPECT_FALSE(
      parse("module X process; state A; trans t from NOWHERE;").ok());
  // Unknown IP.
  EXPECT_FALSE(parse("module X process; state A; kind K;\n"
                     "trans t from A when ghost.K;")
                   .ok());
  // Unknown kind.
  EXPECT_FALSE(parse("module X process; ip p; state A;\n"
                     "trans t from A when p.GHOST;")
                   .ok());
  // when + delay conflict.
  EXPECT_FALSE(parse("module X process; ip p; state A; kind K;\n"
                     "trans t from A when p.K delay 10us;")
                   .ok());
}

TEST(CodegenInstantiate, RunsUnderScheduler) {
  auto machine = parse(kSessionSpec);
  ASSERT_TRUE(machine.ok());

  Specification spec("gen");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& target = sys.create_child<Module>("session", Attribute::Process);

  std::vector<std::string> trace;
  ActionMap actions;
  actions["t_conreq"] = [&](Module&, const Interaction*) {
    trace.push_back("conreq");
  };
  actions["t_ac"] = [&](Module&, const Interaction*) {
    trace.push_back("ac");
  };
  ASSERT_TRUE(instantiate(machine.value(), target, actions).ok());
  EXPECT_EQ(target.transitions().size(), 4u);
  ASSERT_NE(target.find_ip("up"), nullptr);
  ASSERT_NE(target.find_ip("down"), nullptr);

  // Drive it: a user module feeds CONreq and AC.
  auto& user = sys.create_child<Module>("user", Attribute::Process);
  connect(user.ip("u"), *target.find_ip("up"));
  connect(user.ip("d"), *target.find_ip("down"));
  spec.initialize();

  const int kConReq = machine.value().kind_id("CONreq");
  const int kAc = machine.value().kind_id("AC");
  user.ip("u").output(Interaction(kConReq));
  user.ip("d").output(Interaction(kAc));

  estelle::make_executor(spec)->run();
  EXPECT_EQ(trace, (std::vector<std::string>{"conreq", "ac"}));
  EXPECT_EQ(target.state(), machine.value().state_id("OPEN"));
}

TEST(CodegenInstantiate, WatchdogDelayFires) {
  auto machine = parse(kSessionSpec);
  ASSERT_TRUE(machine.ok());
  Specification spec("gen");
  auto& sys = spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& target = sys.create_child<Module>("session", Attribute::Process);
  ASSERT_TRUE(instantiate(machine.value(), target).ok());
  auto& user = sys.create_child<Module>("user", Attribute::Process);
  connect(user.ip("u"), *target.find_ip("up"));
  connect(user.ip("d"), *target.find_ip("down"));
  spec.initialize();

  // CONreq but never AC: the 500us watchdog must return the machine to IDLE.
  user.ip("u").output(Interaction(machine.value().kind_id("CONreq")));
  auto sched = estelle::make_executor(spec);
  sched->run();
  EXPECT_EQ(target.state(), machine.value().state_id("IDLE"));
  EXPECT_GE(sched->now(), common::SimTime::from_us(500));
}

TEST(CodegenRender, EmitsTransitionTable) {
  auto machine = parse(kSessionSpec);
  ASSERT_TRUE(machine.ok());
  const std::string cpp = render_cpp(machine.value());
  EXPECT_NE(cpp.find("enum State { IDLE = 0, WAIT_AC = 1, OPEN = 2 };"),
            std::string::npos);
  EXPECT_NE(cpp.find("TransitionRow"), std::string::npos);
  EXPECT_NE(cpp.find("\"t_conreq\""), std::string::npos);
  EXPECT_NE(cpp.find("/*delay_us*/500"), std::string::npos);
}

}  // namespace
}  // namespace mcam::estelle::codegen
