// Equipment Control System tests: registry, command execution, reservation
// discipline, parameter validation.
#include <gtest/gtest.h>

#include "equipment/equipment.hpp"

namespace mcam::equipment {
namespace {

class EcsFixture : public ::testing::Test {
 protected:
  EcsFixture() : eca("ksr1") {
    cam = eca.register_device(Kind::Camera, "studio-cam",
                              {{"brightness", 50}, {"zoom", 0}});
    mic = eca.register_device(Kind::Microphone, "desk-mic", {{"gain", 30}});
    spk = eca.register_device(Kind::Speaker, "wall-speaker", {{"volume", 40}});
  }
  EquipmentControlAgent eca;
  std::uint32_t cam, mic, spk;
};

TEST_F(EcsFixture, RegistryAndListing) {
  EXPECT_EQ(eca.device_count(), 3u);
  EXPECT_EQ(eca.list().size(), 3u);
  EXPECT_EQ(eca.list(Kind::Camera).size(), 1u);
  EXPECT_EQ(eca.list(Kind::Display).size(), 0u);
  auto status = eca.status(cam);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().name, "studio-cam");
  EXPECT_FALSE(status.value().powered);
  EXPECT_FALSE(eca.status(999).ok());
}

TEST_F(EcsFixture, PowerCycle) {
  auto on = eca.execute(cam, Command::PowerOn, "alice");
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on.value().powered);
  auto off = eca.execute(cam, Command::PowerOff, "alice");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().powered);
}

TEST_F(EcsFixture, SetParamRequiresPowerAndRange) {
  // Powered off ⇒ rejected.
  auto r = eca.execute(spk, Command::SetParam, "alice", "volume", 80);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, kPoweredOff);

  ASSERT_TRUE(eca.execute(spk, Command::PowerOn, "alice").ok());
  r = eca.execute(spk, Command::SetParam, "alice", "volume", 80);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().param_value, 80);
  EXPECT_EQ(eca.status(spk).value().params.at("volume"), 80);

  EXPECT_EQ(eca.execute(spk, Command::SetParam, "alice", "volume", 101)
                .error()
                .code,
            kBadParameter);
  EXPECT_EQ(eca.execute(spk, Command::SetParam, "alice", "volume", -1)
                .error()
                .code,
            kBadParameter);
  EXPECT_EQ(
      eca.execute(spk, Command::SetParam, "alice", "bogus", 10).error().code,
      kBadParameter);
}

TEST_F(EcsFixture, ReservationDiscipline) {
  ASSERT_TRUE(eca.execute(mic, Command::Reserve, "alice").ok());
  EXPECT_EQ(eca.status(mic).value().reserved_by, "alice");

  // Another user cannot touch or steal it.
  EXPECT_EQ(eca.execute(mic, Command::PowerOn, "bob").error().code,
            kDeviceBusy);
  EXPECT_EQ(eca.execute(mic, Command::Reserve, "bob").error().code,
            kDeviceBusy);
  EXPECT_EQ(eca.execute(mic, Command::Release, "bob").error().code,
            kNotReserved);

  // The holder can use and re-reserve (idempotent).
  EXPECT_TRUE(eca.execute(mic, Command::PowerOn, "alice").ok());
  EXPECT_TRUE(eca.execute(mic, Command::Reserve, "alice").ok());
  ASSERT_TRUE(eca.execute(mic, Command::Release, "alice").ok());
  EXPECT_TRUE(eca.status(mic).value().reserved_by.empty());
  // Now bob may reserve.
  EXPECT_TRUE(eca.execute(mic, Command::Reserve, "bob").ok());
}

TEST_F(EcsFixture, GetStatusReadsParam) {
  ASSERT_TRUE(eca.execute(cam, Command::PowerOn, "alice").ok());
  ASSERT_TRUE(
      eca.execute(cam, Command::SetParam, "alice", "brightness", 77).ok());
  auto r = eca.execute(cam, Command::GetStatus, "bob", "brightness");
  ASSERT_TRUE(r.ok());  // status is readable even for non-holders
  EXPECT_EQ(r.value().param_value, 77);
  EXPECT_TRUE(r.value().powered);
  EXPECT_FALSE(
      eca.execute(cam, Command::GetStatus, "bob", "bogus").ok());
}

TEST_F(EcsFixture, UserAgentFacade) {
  EquipmentUserAgent alice(eca, "alice");
  EquipmentUserAgent bob(eca, "bob");

  ASSERT_TRUE(alice.reserve(cam).ok());
  ASSERT_TRUE(alice.power_on(cam).ok());
  ASSERT_TRUE(alice.set_param(cam, "zoom", 30).ok());
  EXPECT_FALSE(bob.power_on(cam).ok());
  EXPECT_EQ(alice.status(cam).value().params.at("zoom"), 30);
  ASSERT_TRUE(alice.release(cam).ok());
  EXPECT_TRUE(bob.power_off(cam).ok());
}

TEST(Ecs, KindNames) {
  EXPECT_STREQ(kind_name(Kind::Camera), "camera");
  EXPECT_STREQ(kind_name(Kind::Microphone), "microphone");
  EXPECT_STREQ(kind_name(Kind::Speaker), "speaker");
  EXPECT_STREQ(kind_name(Kind::Display), "display");
}

}  // namespace
}  // namespace mcam::equipment
