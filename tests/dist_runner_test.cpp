// DistributedRunner tests (transport/dist_runner.hpp): the paper's §4
// distribution claim driven end to end.
//
// The contract pinned here:
//   * a single-node group is exactly Sequential — same trace, same world,
//     same fired count — and conflicted specifications are refused with a
//     structured error (no cross-process serialized fallback exists);
//   * multi-node groups over every transport (loopback threads, Unix-socket
//     threads, Unix-socket PROCESSES, TCP) reproduce Sequential on
//     conflict-free generated specs: the per-node (round, shard)-stamped
//     announcement streams, stable-merged by (round, shard), equal the
//     sequential trace verbatim, locally-owned module state matches, and
//     fired counts sum exactly;
//   * failure is a value: a SIGKILLed peer, an early leaver and a
//     mismatched specification all end the survivors' runs with
//     StopReason::Aborted and a description in RunReport::error — no hang,
//     no std::terminate;
//   * the null-message machinery actually runs: an idle pipeline stage
//     services provably-empty rounds and the transport counts them;
//   * in-node parallelism is invisible: dealing a node's shards to a
//     WorkerPool (DistOptions::worker_count) while the run thread pumps the
//     transport produces the identical merged trace, worlds and fired
//     counts at every width — with and without injected wire faults, in
//     threads and in forked processes.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asn1/value.hpp"
#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/trace.hpp"
#include "estelle/transport/dist_runner.hpp"
#include "estelle/transport/fault_transport.hpp"
#include "estelle/transport/socket_transport.hpp"
#include "estelle/transport/transport.hpp"
#include "random_spec_gen.hpp"

// fork() and ThreadSanitizer do not mix; the in-process transports cover the
// protocol under TSan, the fork suites cover real process isolation.
#if defined(__SANITIZE_THREAD__)
#define MCAM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCAM_TSAN_BUILD 1
#endif
#endif

namespace mcam::estelle {
namespace {

using common::SimTime;

int spec_count() {
  if (const char* env = std::getenv("MCAM_SOAK_SPECS"))
    return std::max(1, std::atoi(env));
  return 50;
}

std::string module_line(Module& m) {
  std::string out = m.path() + "=" + std::to_string(m.state());
  for (const auto& ip : m.ips())
    out += ":" + ip->name() + "(q" + std::to_string(ip->queue_length()) +
           ",s" + std::to_string(ip->sent()) + ",d" +
           std::to_string(ip->dropped()) + ")";
  return out;
}

/// Sequential ground truth for one generated seed.
struct SeqBaseline {
  std::vector<std::string> trace;
  std::map<std::string, std::string> world;  // module path -> snapshot line
  std::string world_str;                     // full-world snapshot
  std::uint64_t fired = 0;
};

SeqBaseline sequential_baseline(std::uint64_t seed) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Sequential;
  auto executor = make_executor(*g.spec, cfg);
  TraceRecorder trace;
  const RunReport r = executor->run({.observers = {&trace}});
  SeqBaseline base;
  EXPECT_EQ(r.reason, StopReason::Quiescent);
  base.fired = r.fired;
  for (const TraceEvent& e : trace.events())
    base.trace.push_back(e.module_path + "/" + e.transition);
  g.spec->root().for_each(
      [&base](Module& m) { base.world[m.path()] = module_line(m); });
  base.world_str = specgen::world_snapshot(*g.spec);
  return base;
}

/// One (round, shard)-stamped announcement, as the trace_hook hands it out.
struct DistEvent {
  std::uint64_t round = 0;
  int shard = 0;
  std::string label;
};

/// What one node of a multi-node differential run produced.
struct NodeOutcome {
  RunReport report;
  std::vector<DistEvent> events;
  std::vector<std::string> local_world;  // lines for locally-owned modules
};

/// Session knobs tuned for fault tests: real recovery, test-speed waits.
void fast_session(DistOptions& opts) {
  opts.reconnect_max_attempts = 6;
  opts.backoff_initial_ms = 5;
  opts.backoff_cap_ms = 40;
  opts.resend_timeout_ms = 150;
  opts.heartbeat_interval_ms = 50;
}

/// Run node `node` of a `nodes`-wide group over `transport` on the world of
/// `seed`, recording the stamped trace and the locally-owned module lines.
NodeOutcome run_generated_node(
    std::uint64_t seed, int node, int nodes,
    std::shared_ptr<MailboxTransport> transport, bool batch_transfers = true,
    const std::function<void(DistOptions&)>& tweak = {}) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  NodeOutcome out;
  DistOptions opts;
  opts.node = node;
  opts.nodes = nodes;
  opts.transport = std::move(transport);
  opts.gate_timeout_ms = 20000;
  opts.batch_transfers = batch_transfers;
  if (tweak) tweak(opts);
  opts.trace_hook = [&out](std::uint64_t r, int s, Module& m,
                           const Transition& t, SimTime) {
    out.events.push_back({r, s, m.path() + "/" + t.name});
  };
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Distributed;
  cfg.backend_options = opts;
  auto executor = make_executor(*g.spec, cfg);
  out.report = executor->run();
  ConflictAnalysis analysis(*g.spec);
  for (int s = 0; s < analysis.shard_count(); ++s) {
    if (s % nodes != node) continue;
    for (Module* m : analysis.shards()[static_cast<std::size_t>(s)].modules)
      out.local_world.push_back(module_line(*m));
  }
  return out;
}

/// Stable-merge per-node announcement streams by (round, shard). Each node
/// emits its events in (round asc, shard asc, within-shard firing order);
/// shards are disjoint across nodes, so this reproduces the round-major,
/// shard-ordered composition — which free_running_test already pins to the
/// sequential trace.
std::vector<std::string> merge_traces(const std::vector<NodeOutcome>& nodes) {
  std::vector<DistEvent> all;
  for (const NodeOutcome& n : nodes)
    all.insert(all.end(), n.events.begin(), n.events.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const DistEvent& a, const DistEvent& b) {
                     return a.round != b.round ? a.round < b.round
                                               : a.shard < b.shard;
                   });
  std::vector<std::string> labels;
  labels.reserve(all.size());
  for (DistEvent& e : all) labels.push_back(std::move(e.label));
  return labels;
}

void expect_matches_baseline(const SeqBaseline& seq,
                             const std::vector<NodeOutcome>& nodes) {
  std::uint64_t fired = 0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    SCOPED_TRACE("node " + std::to_string(n));
    EXPECT_EQ(nodes[n].report.reason, StopReason::Quiescent)
        << nodes[n].report.error;
    EXPECT_TRUE(nodes[n].report.error.empty()) << nodes[n].report.error;
    fired += nodes[n].report.fired;
    for (const std::string& line : nodes[n].local_world) {
      const std::string path = line.substr(0, line.find('='));
      const auto it = seq.world.find(path);
      ASSERT_NE(it, seq.world.end()) << path;
      EXPECT_EQ(line, it->second) << "local world diverged at " << path;
    }
  }
  EXPECT_EQ(fired, seq.fired);
  EXPECT_EQ(merge_traces(nodes), seq.trace) << "merged trace diverged";
}

bool eligible_for_two_nodes(std::uint64_t seed) {
  specgen::GeneratedWorld probe = specgen::generate(seed);
  ConflictAnalysis analysis(*probe.spec);
  return analysis.conflict_free() && analysis.shard_count() >= 2;
}

/// A deterministic producer->consumer pipeline across two system modules:
/// shard 0 streams `budget` tokens into shard 1. The minimal spec where the
/// two nodes genuinely exchange Transfer frames and gate on each other.
struct PipeWorld {
  Specification spec{"pipe"};
  std::shared_ptr<int> sent = std::make_shared<int>(0);
  std::shared_ptr<int> got = std::make_shared<int>(0);

  explicit PipeWorld(int budget, const char* send_name = "send") {
    auto& psys =
        spec.root().create_child<Module>("p", Attribute::SystemProcess);
    auto& csys =
        spec.root().create_child<Module>("c", Attribute::SystemProcess);
    auto& prod = psys.create_child<Module>("prod", Attribute::Process);
    auto& cons = csys.create_child<Module>("cons", Attribute::Process);
    connect(prod.ip("out"), cons.ip("in"));
    InteractionPoint* out = &prod.ip("out");
    prod.trans(send_name)
        .cost(SimTime::from_us(3))
        .provided([sent = sent, budget](Module&, const Interaction*) {
          return *sent < budget;
        })
        .action([sent = sent, out](Module& m, const Interaction*) {
          ++*sent;
          out->output(Interaction(1, asn1::Value::integer(*sent)));
          m.set_state(m.state() + 1);
        });
    cons.trans("recv")
        .when(cons.ip("in"))
        .cost(SimTime::from_us(2))
        .action([got = got](Module& m, const Interaction*) {
          ++*got;
          m.set_state(m.state() + 1);
        });
    spec.initialize();
  }
};

std::unique_ptr<Executor> make_pipe_executor(PipeWorld& world,
                                             DistOptions opts) {
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Distributed;
  cfg.backend_options = std::move(opts);
  return make_executor(world.spec, cfg);
}

/// kLanes independent producer->consumer lanes, every producer on node 0 and
/// every consumer on node 1: each active round ships kLanes same-stamp
/// transfers to the same peer — the shape transfer batching coalesces.
struct FanWorld {
  static constexpr int kLanes = 8;
  Specification spec{"fan"};
  std::shared_ptr<int> sent = std::make_shared<int>(0);
  std::shared_ptr<int> got = std::make_shared<int>(0);

  explicit FanWorld(int budget) {
    auto& psys =
        spec.root().create_child<Module>("p", Attribute::SystemProcess);
    auto& csys =
        spec.root().create_child<Module>("c", Attribute::SystemProcess);
    for (int lane = 0; lane < kLanes; ++lane) {
      auto& prod = psys.create_child<Module>("prod" + std::to_string(lane),
                                             Attribute::Process);
      auto& cons = csys.create_child<Module>("cons" + std::to_string(lane),
                                             Attribute::Process);
      connect(prod.ip("out"), cons.ip("in"));
      InteractionPoint* out = &prod.ip("out");
      prod.trans("send")
          .cost(SimTime::from_us(3))
          .provided([budget](Module& m, const Interaction*) {
            return m.state() < budget;
          })
          .action([sent = sent, out](Module& m, const Interaction*) {
            ++*sent;
            out->output(Interaction(1, asn1::Value::integer(m.state())));
            m.set_state(m.state() + 1);
          });
      cons.trans("recv")
          .when(cons.ip("in"))
          .cost(SimTime::from_us(2))
          .action([got = got](Module& m, const Interaction*) {
            ++*got;
            m.set_state(m.state() + 1);
          });
    }
    spec.initialize();
  }
};

std::string make_temp_dir() {
  char tmpl[] = "/tmp/mcam_dist_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

// ---------------------------------------------------------------------------
// Single node == Sequential, conflicts refused

TEST(DistRunner, SingleNodeMatchesSequentialAndRefusesConflicts) {
  const int n = spec_count();
  int matched = 0, refused = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    specgen::GeneratedWorld probe = specgen::generate(seed);
    ConflictAnalysis analysis(*probe.spec);

    specgen::GeneratedWorld g = specgen::generate(seed);
    ExecutorConfig cfg;
    cfg.kind = ExecutorKind::Distributed;  // no options: 1 node, no transport
    auto executor = make_executor(*g.spec, cfg);
    TraceRecorder trace;
    const RunReport r = executor->run({.observers = {&trace}});

    if (!analysis.conflict_free()) {
      EXPECT_EQ(r.reason, StopReason::Aborted);
      EXPECT_NE(r.error.find("conflict"), std::string::npos) << r.error;
      EXPECT_EQ(r.fired, 0u);
      ++refused;
      continue;
    }
    const SeqBaseline seq = sequential_baseline(seed);
    EXPECT_EQ(r.reason, StopReason::Quiescent) << r.error;
    EXPECT_EQ(r.fired, seq.fired);
    std::vector<std::string> labels;
    for (const TraceEvent& e : trace.events())
      labels.push_back(e.module_path + "/" + e.transition);
    EXPECT_EQ(labels, seq.trace);
    EXPECT_EQ(specgen::world_snapshot(*g.spec), seq.world_str)
        << "single-node world diverged";
    ++matched;
  }
  if (n >= 50) {
    EXPECT_GE(matched, 20);
    EXPECT_GE(refused, 3);
  }
}

// ---------------------------------------------------------------------------
// Two nodes, in-process loopback: the generated-spec sweep

TEST(DistRunner, TwoNodeLoopbackMergedTraceMatchesSequential) {
  const int n = spec_count();
  int swept = 0;
  std::uint64_t frames_seen = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);

    LoopbackHub hub(2);
    std::vector<std::shared_ptr<MailboxTransport>> transports;
    for (int node = 0; node < 2; ++node)
      transports.push_back(
          std::shared_ptr<MailboxTransport>(hub.endpoint(node)));
    std::vector<NodeOutcome> nodes(2);
    std::vector<std::thread> threads;
    for (int node = 0; node < 2; ++node)
      threads.emplace_back([&, node] {
        nodes[static_cast<std::size_t>(node)] =
            run_generated_node(seed, node, 2, transports[
                static_cast<std::size_t>(node)]);
      });
    for (std::thread& t : threads) t.join();

    expect_matches_baseline(seq, nodes);
    for (const NodeOutcome& node : nodes)
      frames_seen += node.report.transport.frames_sent;
    ++swept;
    if (HasFatalFailure()) return;
  }
  if (n >= 50) {
    // Diversity floor: the sweep is vacuous unless it really covers
    // multi-shard conflict-free specs, and at least some of them must move
    // actual Transfer/Advertise traffic between the two nodes.
    EXPECT_GE(swept, 10);
    EXPECT_GT(frames_seen, 0u);
  }
}

// ---------------------------------------------------------------------------
// Node-parallel dispatch: WorkerPool rounds inside each node are invisible

TEST(DistRunner, NodeParallelLoopbackSweepMatchesSequential) {
  // The loopback sweep again, at every in-node width: worker_count 1 is the
  // sequential per-node loop, 2 and 4 deal the node's shards to a
  // WorkerPool while the run thread pumps the transport. The merged trace
  // must not move by a single event at any width.
  const int n = spec_count();
  int swept = 0;
  std::uint64_t parallel_rounds = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);
    for (const int workers : {1, 2, 4}) {
      SCOPED_TRACE("workers " + std::to_string(workers));
      LoopbackHub hub(2);
      std::vector<std::shared_ptr<MailboxTransport>> transports;
      for (int node = 0; node < 2; ++node)
        transports.push_back(
            std::shared_ptr<MailboxTransport>(hub.endpoint(node)));
      std::vector<NodeOutcome> nodes(2);
      std::vector<std::thread> threads;
      for (int node = 0; node < 2; ++node)
        threads.emplace_back([&, node] {
          nodes[static_cast<std::size_t>(node)] = run_generated_node(
              seed, node, 2, transports[static_cast<std::size_t>(node)], true,
              [workers](DistOptions& o) { o.worker_count = workers; });
        });
      for (std::thread& t : threads) t.join();
      expect_matches_baseline(seq, nodes);
      for (const NodeOutcome& node : nodes) {
        parallel_rounds += node.report.transport.parallel_shard_rounds;
        if (workers == 1)
          EXPECT_EQ(node.report.transport.parallel_shard_rounds, 0u)
              << "worker_count 1 must keep the sequential loop";
      }
      if (HasFatalFailure()) return;
    }
    ++swept;
  }
  if (n >= 50) {
    EXPECT_GE(swept, 10);
    // Vacuity guard: seeds with >= 2 shards on one node must exist, and on
    // those the pool path (not the single-local-shard fallback) must run.
    EXPECT_GT(parallel_rounds, 0u) << "no node ever dealt a parallel round";
  }
}

TEST(DistRunner, SingleNodeParallelMatchesSequential) {
  // A transportless single-node group at width >= 2: pure in-node
  // parallelism, burst path included. The announced trace (replayed on the
  // run thread in (round, shard) order) and the final world must equal
  // Sequential verbatim.
  const int n = spec_count();
  int swept = 0;
  std::uint64_t parallel_rounds = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;  // >= 2 shards, no conflicts
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);
    for (const int workers : {2, 4}) {
      SCOPED_TRACE("workers " + std::to_string(workers));
      specgen::GeneratedWorld g = specgen::generate(seed);
      DistOptions opts;
      opts.worker_count = workers;
      ExecutorConfig cfg;
      cfg.kind = ExecutorKind::Distributed;
      cfg.backend_options = opts;
      auto executor = make_executor(*g.spec, cfg);
      TraceRecorder trace;
      const RunReport r = executor->run({.observers = {&trace}});
      EXPECT_EQ(r.reason, StopReason::Quiescent) << r.error;
      EXPECT_EQ(r.fired, seq.fired);
      std::vector<std::string> labels;
      for (const TraceEvent& e : trace.events())
        labels.push_back(e.module_path + "/" + e.transition);
      EXPECT_EQ(labels, seq.trace) << "announced trace diverged";
      EXPECT_EQ(specgen::world_snapshot(*g.spec), seq.world_str)
          << "single-node parallel world diverged";
      // Width is capped at the node's shard count; >= 2 shards guaranteed
      // by eligibility, so width 2 always engages the pool.
      ConflictAnalysis analysis(*g.spec);
      EXPECT_EQ(r.transport.node_workers,
                std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(workers),
                    static_cast<std::uint64_t>(analysis.shard_count())));
      EXPECT_GT(r.transport.parallel_shard_rounds, 0u);
      parallel_rounds += r.transport.parallel_shard_rounds;
      if (HasFatalFailure()) return;
    }
    ++swept;
  }
  if (n >= 50) {
    EXPECT_GE(swept, 10);
    EXPECT_GT(parallel_rounds, 0u) << "the pool path never engaged";
  }
}

// ---------------------------------------------------------------------------
// Two nodes, Unix-domain sockets (threads): the BER wire under TSan too

TEST(DistRunner, TwoNodeUnixSocketDifferential) {
  const int n = spec_count();
  int swept = 0;
  for (std::uint64_t seed = 1;
       seed <= static_cast<std::uint64_t>(n) && swept < 4; ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);
    const std::string dir = make_temp_dir();
    ASSERT_FALSE(dir.empty());

    std::vector<NodeOutcome> nodes(2);
    std::vector<std::string> mesh_errors(2);
    std::vector<std::thread> threads;
    for (int node = 0; node < 2; ++node)
      threads.emplace_back([&, node] {
        auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
        if (!mesh.ok()) {
          mesh_errors[static_cast<std::size_t>(node)] = mesh.error().message;
          return;
        }
        nodes[static_cast<std::size_t>(node)] = run_generated_node(
            seed, node, 2,
            std::shared_ptr<MailboxTransport>(std::move(mesh.value())));
      });
    for (std::thread& t : threads) t.join();
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(mesh_errors[0].empty()) << mesh_errors[0];
    ASSERT_TRUE(mesh_errors[1].empty()) << mesh_errors[1];

    expect_matches_baseline(seq, nodes);
    // The socket path really serialized frames: bytes moved both ways.
    EXPECT_GT(nodes[0].report.transport.bytes_sent, 0u);
    EXPECT_GT(nodes[1].report.transport.bytes_sent, 0u);
    ++swept;
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(swept, 1);
}

TEST(DistRunner, NodeParallelUnixSocketDifferential) {
  // Node-parallel rounds over the real BER wire (threads, TSan-covered):
  // the overlapped pump drains socket frames while the pool runs shards.
  const int n = spec_count();
  int swept = 0;
  for (std::uint64_t seed = 1;
       seed <= static_cast<std::uint64_t>(n) && swept < 4; ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);
    const int workers = (swept % 2 == 0) ? 2 : 4;
    SCOPED_TRACE("workers " + std::to_string(workers));
    const std::string dir = make_temp_dir();
    ASSERT_FALSE(dir.empty());

    std::vector<NodeOutcome> nodes(2);
    std::vector<std::string> mesh_errors(2);
    std::vector<std::thread> threads;
    for (int node = 0; node < 2; ++node)
      threads.emplace_back([&, node] {
        auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
        if (!mesh.ok()) {
          mesh_errors[static_cast<std::size_t>(node)] = mesh.error().message;
          return;
        }
        nodes[static_cast<std::size_t>(node)] = run_generated_node(
            seed, node, 2,
            std::shared_ptr<MailboxTransport>(std::move(mesh.value())), true,
            [workers](DistOptions& o) { o.worker_count = workers; });
      });
    for (std::thread& t : threads) t.join();
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(mesh_errors[0].empty()) << mesh_errors[0];
    ASSERT_TRUE(mesh_errors[1].empty()) << mesh_errors[1];

    expect_matches_baseline(seq, nodes);
    EXPECT_GT(nodes[0].report.transport.bytes_sent, 0u);
    EXPECT_GT(nodes[1].report.transport.bytes_sent, 0u);
    ++swept;
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(swept, 1);
}

// ---------------------------------------------------------------------------
// Batched vs unbatched transfers: same merged trace, fewer frames

TEST(DistRunner, BatchedAndUnbatchedTransfersMatchSequential) {
  // The generated-spec sweep, run in BOTH transfer modes over BOTH in-process
  // mesh kinds: coalescing a round's transfers into TransferBatch frames must
  // not move a single event in the merged trace.
  const int n = spec_count();
  int swept = 0;
  std::uint64_t batched_frames = 0, unbatched_frames = 0;
  for (std::uint64_t seed = 1;
       seed <= static_cast<std::uint64_t>(n) && swept < 4; ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);
    for (const bool batch : {true, false}) {
      SCOPED_TRACE(batch ? "batched" : "unbatched");
      {
        SCOPED_TRACE("loopback");
        LoopbackHub hub(2);
        std::vector<std::shared_ptr<MailboxTransport>> transports;
        for (int node = 0; node < 2; ++node)
          transports.push_back(
              std::shared_ptr<MailboxTransport>(hub.endpoint(node)));
        std::vector<NodeOutcome> nodes(2);
        std::vector<std::thread> threads;
        for (int node = 0; node < 2; ++node)
          threads.emplace_back([&, node] {
            nodes[static_cast<std::size_t>(node)] = run_generated_node(
                seed, node, 2, transports[static_cast<std::size_t>(node)],
                batch);
          });
        for (std::thread& t : threads) t.join();
        expect_matches_baseline(seq, nodes);
        for (const NodeOutcome& node : nodes) {
          (batch ? batched_frames : unbatched_frames) +=
              node.report.transport.frames_sent;
          if (!batch)
            EXPECT_EQ(node.report.transport.frames_batched, 0u)
                << "unbatched mode must not emit TransferBatch frames";
        }
      }
      {
        SCOPED_TRACE("unix socket");
        const std::string dir = make_temp_dir();
        ASSERT_FALSE(dir.empty());
        std::vector<NodeOutcome> nodes(2);
        std::vector<std::string> mesh_errors(2);
        std::vector<std::thread> threads;
        for (int node = 0; node < 2; ++node)
          threads.emplace_back([&, node] {
            auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
            if (!mesh.ok()) {
              mesh_errors[static_cast<std::size_t>(node)] =
                  mesh.error().message;
              return;
            }
            nodes[static_cast<std::size_t>(node)] = run_generated_node(
                seed, node, 2,
                std::shared_ptr<MailboxTransport>(std::move(mesh.value())),
                batch);
          });
        for (std::thread& t : threads) t.join();
        std::filesystem::remove_all(dir);
        ASSERT_TRUE(mesh_errors[0].empty()) << mesh_errors[0];
        ASSERT_TRUE(mesh_errors[1].empty()) << mesh_errors[1];
        expect_matches_baseline(seq, nodes);
      }
      if (HasFatalFailure()) return;
    }
    ++swept;
  }
  EXPECT_GE(swept, 1);
  // Coalescing never sends MORE frames than one-frame-per-transfer.
  EXPECT_LE(batched_frames, unbatched_frames);
}

TEST(DistRunner, BatchingCoalescesFanOutRounds) {
  // Deterministic diversity check the generated sweep cannot guarantee:
  // 8 same-round transfers to one peer become one TransferBatch, visibly
  // shrinking the frame count without changing the delivered tokens.
  constexpr int kBudget = 30;
  struct PairOutcome {
    RunReport r0, r1;
    int got = 0;
  };
  auto run_pair = [&](bool batch) {
    PairOutcome o;
    LoopbackHub hub(2);
    auto t0 = std::shared_ptr<MailboxTransport>(hub.endpoint(0));
    auto t1 = std::shared_ptr<MailboxTransport>(hub.endpoint(1));
    auto run_node = [&](int node, std::shared_ptr<MailboxTransport> t,
                        RunReport* r, int* got) {
      FanWorld world(kBudget);
      DistOptions opts;
      opts.node = node;
      opts.nodes = 2;
      opts.transport = std::move(t);
      opts.batch_transfers = batch;
      ExecutorConfig cfg;
      cfg.kind = ExecutorKind::Distributed;
      cfg.backend_options = std::move(opts);
      auto executor = make_executor(world.spec, cfg);
      *r = executor->run();
      if (got != nullptr) *got = *world.got;
    };
    std::thread producer([&] { run_node(0, t0, &o.r0, nullptr); });
    std::thread consumer([&] { run_node(1, t1, &o.r1, &o.got); });
    producer.join();
    consumer.join();
    return o;
  };
  const PairOutcome batched = run_pair(true);
  const PairOutcome unbatched = run_pair(false);
  for (const PairOutcome* o : {&batched, &unbatched}) {
    EXPECT_EQ(o->r0.reason, StopReason::Quiescent) << o->r0.error;
    EXPECT_EQ(o->r1.reason, StopReason::Quiescent) << o->r1.error;
    EXPECT_EQ(o->got, FanWorld::kLanes * kBudget);
  }
  EXPECT_EQ(batched.r0.fired + batched.r1.fired,
            unbatched.r0.fired + unbatched.r1.fired);
  // The producer's transfer traffic collapsed into batches...
  EXPECT_GT(batched.r0.transport.frames_batched, 0u);
  EXPECT_EQ(unbatched.r0.transport.frames_batched, 0u);
  // ...so it sent fewer frames for the same tokens.
  EXPECT_LT(batched.r0.transport.frames_sent,
            unbatched.r0.transport.frames_sent);
}

// ---------------------------------------------------------------------------
// Two PROCESSES, Unix-domain sockets: the headline differential

/// Child half of the multi-process differential: run one node and leave the
/// stamped trace + local world in `out_path` for the parent to merge. All
/// checking happens in the parent — a child failure surfaces as a bad exit
/// status or a non-quiescent result line, never a lost gtest assertion.
void run_child_node(std::uint64_t seed, int node, const std::string& dir,
                    const std::string& out_path, int workers) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
  if (!mesh.ok()) {
    std::ofstream f(out_path);
    f << "R meshfail: " << mesh.error().message << "\n";
    f.close();
    ::_exit(2);
  }
  std::vector<DistEvent> events;
  DistOptions opts;
  opts.node = node;
  opts.nodes = 2;
  opts.transport = std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
  opts.gate_timeout_ms = 20000;
  opts.worker_count = workers;
  opts.trace_hook = [&events](std::uint64_t r, int s, Module& m,
                              const Transition& t, SimTime) {
    events.push_back({r, s, m.path() + "/" + t.name});
  };
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Distributed;
  cfg.backend_options = opts;
  auto executor = make_executor(*g.spec, cfg);
  const RunReport rep = executor->run();

  std::ofstream f(out_path);
  f << "R "
    << (rep.reason == StopReason::Quiescent ? std::string("quiescent")
                                            : "other: " + rep.error)
    << "\n";
  f << "F " << rep.fired << "\n";
  f << "T " << rep.transport.frames_sent << "\n";
  for (const DistEvent& e : events)
    f << "E " << e.round << " " << e.shard << " " << e.label << "\n";
  ConflictAnalysis analysis(*g.spec);
  for (int s = 0; s < analysis.shard_count(); ++s) {
    if (s % 2 != node) continue;
    for (Module* m : analysis.shards()[static_cast<std::size_t>(s)].modules)
      f << "W " << module_line(*m) << "\n";
  }
  f.close();
  ::_exit(f.good() ? 0 : 3);
}

bool parse_child_outcome(const std::string& path, NodeOutcome* out,
                         std::string* reason) {
  std::ifstream f(path);
  if (!f.good()) {
    *reason = "missing result file " + path;
    return false;
  }
  std::string line;
  bool quiescent = false;
  while (std::getline(f, line)) {
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "R") {
      std::string rest;
      std::getline(in, rest);
      quiescent = rest.find("quiescent") != std::string::npos;
      if (!quiescent) *reason = "child run ended:" + rest;
    } else if (tag == "F") {
      in >> out->report.fired;
    } else if (tag == "T") {
      in >> out->report.transport.frames_sent;
    } else if (tag == "S") {
      in >> out->report.transport.reconnects >>
          out->report.transport.frames_replayed >>
          out->report.transport.dup_frames_dropped >>
          out->report.transport.faults_injected;
    } else if (tag == "E") {
      DistEvent e;
      in >> e.round >> e.shard;
      std::getline(in, e.label);
      if (!e.label.empty() && e.label.front() == ' ') e.label.erase(0, 1);
      out->events.push_back(std::move(e));
    } else if (tag == "W") {
      std::string rest;
      std::getline(in, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      out->local_world.push_back(std::move(rest));
    }
  }
  out->report.reason =
      quiescent ? StopReason::Quiescent : StopReason::Aborted;
  return quiescent;
}

/// The wire-record fault plan node `node` injects toward its peer for fault
/// seed `fault_seed`: steady drops/dups/delays both ways, plus exactly one
/// mid-run close per run (on the node the seed's parity picks) — the
/// acceptance shape: frame drops + one socket close, every seed.
FaultPlan sweep_plan(std::uint64_t fault_seed, int node) {
  const std::int64_t close_after =
      node == static_cast<int>(fault_seed % 2)
          ? static_cast<std::int64_t>(8 + fault_seed % 24)
          : -1;
  return FaultPlan::seeded(fault_seed * 977 + static_cast<std::uint64_t>(node),
                           400, 25, 20, 12, close_after);
}

/// Child half of the seeded-fault differential: like run_child_node, but the
/// mesh carries a wire-record fault plan and the runner uses the fast
/// session knobs. Adds an "S" stats line so the parent can prove recovery
/// actually ran.
void run_fault_child_node(std::uint64_t seed, std::uint64_t fault_seed,
                          int node, const std::string& dir,
                          const std::string& out_path, int workers) {
  specgen::GeneratedWorld g = specgen::generate(seed);
  auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
  if (!mesh.ok()) {
    std::ofstream f(out_path);
    f << "R meshfail: " << mesh.error().message << "\n";
    f.close();
    ::_exit(2);
  }
  mesh.value()->set_wire_faults(1 - node, sweep_plan(fault_seed, node));
  std::vector<DistEvent> events;
  DistOptions opts;
  opts.node = node;
  opts.nodes = 2;
  opts.transport = std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
  opts.gate_timeout_ms = 20000;
  opts.worker_count = workers;
  fast_session(opts);
  opts.trace_hook = [&events](std::uint64_t r, int s, Module& m,
                              const Transition& t, SimTime) {
    events.push_back({r, s, m.path() + "/" + t.name});
  };
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Distributed;
  cfg.backend_options = opts;
  auto executor = make_executor(*g.spec, cfg);
  const RunReport rep = executor->run();
  // ::_exit skips destructors; tear down every owner of the transport
  // explicitly (the executor AND the shared_ptr copies in opts/cfg) so the
  // session linger runs — a lost parting Bye is replayed to the peer here,
  // and without it the peer would redial a process that no longer exists.
  executor.reset();
  cfg = ExecutorConfig{};
  opts.transport.reset();

  std::ofstream f(out_path);
  f << "R "
    << (rep.reason == StopReason::Quiescent ? std::string("quiescent")
                                            : "other: " + rep.error)
    << "\n";
  f << "F " << rep.fired << "\n";
  f << "T " << rep.transport.frames_sent << "\n";
  f << "S " << rep.transport.reconnects << " "
    << rep.transport.frames_replayed << " "
    << rep.transport.dup_frames_dropped << " "
    << rep.transport.faults_injected << "\n";
  for (const DistEvent& e : events)
    f << "E " << e.round << " " << e.shard << " " << e.label << "\n";
  ConflictAnalysis analysis(*g.spec);
  for (int s = 0; s < analysis.shard_count(); ++s) {
    if (s % 2 != node) continue;
    for (Module* m : analysis.shards()[static_cast<std::size_t>(s)].modules)
      f << "W " << module_line(*m) << "\n";
  }
  f.close();
  ::_exit(f.good() ? 0 : 3);
}

TEST(DistRunner, MultiProcessUnixSocketDifferential) {
#ifdef MCAM_TSAN_BUILD
  GTEST_SKIP() << "fork-based differential is covered outside TSan";
#else
  const int n = spec_count();
  int swept = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(n); ++seed) {
    if (!eligible_for_two_nodes(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SeqBaseline seq = sequential_baseline(seed);
    const std::string dir = make_temp_dir();
    ASSERT_FALSE(dir.empty());
    // Cycle the in-node width across the sweep: real processes must be
    // differential-identical whether their shards run sequentially or on a
    // WorkerPool overlapped with the socket pump.
    const int workers = seed % 3 == 0 ? 1 : seed % 3 == 1 ? 2 : 4;
    SCOPED_TRACE("workers " + std::to_string(workers));

    std::vector<pid_t> pids;
    for (int node = 0; node < 2; ++node) {
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        run_child_node(seed, node, dir,
                       dir + "/result" + std::to_string(node), workers);
        ::_exit(4);  // unreachable
      }
      pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
      ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    std::vector<NodeOutcome> nodes(2);
    for (int node = 0; node < 2; ++node) {
      std::string why;
      ASSERT_TRUE(parse_child_outcome(dir + "/result" + std::to_string(node),
                                      &nodes[static_cast<std::size_t>(node)],
                                      &why))
          << "node " << node << ": " << why;
    }
    std::filesystem::remove_all(dir);

    std::uint64_t fired = nodes[0].report.fired + nodes[1].report.fired;
    EXPECT_EQ(fired, seq.fired);
    EXPECT_EQ(merge_traces(nodes), seq.trace)
        << "cross-process merged trace diverged";
    for (const NodeOutcome& node : nodes) {
      for (const std::string& line : node.local_world) {
        const std::string path = line.substr(0, line.find('='));
        const auto it = seq.world.find(path);
        ASSERT_NE(it, seq.world.end()) << path;
        EXPECT_EQ(line, it->second) << "local world diverged at " << path;
      }
    }
    ++swept;
    if (HasFatalFailure()) return;
  }
  if (n >= 50) EXPECT_GE(swept, 10);
#endif
}

// ---------------------------------------------------------------------------
// Seeded wire faults: recovery preserves the differential

TEST(DistRunner, WireFaultRecoveryPreservesUnixDifferential) {
  // Thread-based (TSan-covered) half of the fault sweep: one fixed generated
  // world, several fault seeds, drops + dups + delays + one mid-run close
  // injected below the session sequence numbers — the merged trace, local
  // worlds and fired counts must still equal Sequential, and the session
  // counters must prove recovery (not luck) produced that equality.
  std::uint64_t world_seed = 0;
  for (std::uint64_t s = 1; s <= 100 && world_seed == 0; ++s)
    if (eligible_for_two_nodes(s)) world_seed = s;
  ASSERT_NE(world_seed, 0u);
  const SeqBaseline seq = sequential_baseline(world_seed);

  std::uint64_t faults = 0, reconnects = 0, replayed = 0;
  for (std::uint64_t fs = 1; fs <= 6; ++fs) {
    SCOPED_TRACE("fault seed " + std::to_string(fs));
    // Faults × node-parallel widths under TSan: the width cycle proves
    // recovery replay and the overlapped pump compose at every width.
    const int workers = fs % 3 == 0 ? 1 : fs % 3 == 1 ? 2 : 4;
    SCOPED_TRACE("workers " + std::to_string(workers));
    const std::string dir = make_temp_dir();
    ASSERT_FALSE(dir.empty());
    std::vector<NodeOutcome> nodes(2);
    std::vector<std::string> mesh_errors(2);
    std::vector<std::thread> threads;
    for (int node = 0; node < 2; ++node)
      threads.emplace_back([&, node] {
        auto mesh = StreamSocketTransport::unix_mesh(node, 2, dir);
        if (!mesh.ok()) {
          mesh_errors[static_cast<std::size_t>(node)] = mesh.error().message;
          return;
        }
        mesh.value()->set_wire_faults(1 - node, sweep_plan(fs, node));
        nodes[static_cast<std::size_t>(node)] = run_generated_node(
            world_seed, node, 2,
            std::shared_ptr<MailboxTransport>(std::move(mesh.value())), true,
            [workers](DistOptions& o) {
              fast_session(o);
              o.worker_count = workers;
            });
      });
    for (std::thread& t : threads) t.join();
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(mesh_errors[0].empty()) << mesh_errors[0];
    ASSERT_TRUE(mesh_errors[1].empty()) << mesh_errors[1];

    expect_matches_baseline(seq, nodes);
    for (const NodeOutcome& n : nodes) {
      faults += n.report.transport.faults_injected;
      reconnects += n.report.transport.reconnects;
      replayed += n.report.transport.frames_replayed;
    }
    if (HasFatalFailure()) return;
  }
  EXPECT_GT(faults, 0u) << "the sweep never injected a fault";
  EXPECT_GT(reconnects, 0u) << "no run ever recovered a connection";
  EXPECT_GT(replayed, 0u) << "recovery never replayed a lost record";
}

TEST(DistRunner, WireFaultRecoveryOnTcpPipeline) {
  // The same recovery machinery over real TCP: injected drops and a mid-run
  // close on the producer's stream must not lose or reorder a single token.
  static constexpr int kBudget = 25;
  static constexpr std::uint16_t kBasePort = 45317;
  RunReport r0, r1;
  int got = -1;
  std::string mesh_error;
  std::thread producer([&] {
    PipeWorld world(kBudget);
    auto mesh = StreamSocketTransport::tcp_mesh(0, 2, kBasePort);
    if (!mesh.ok()) {
      mesh_error = mesh.error().message;
      return;
    }
    mesh.value()->set_wire_faults(
        1, FaultPlan::seeded(9001, 400, 30, 20, 12, /*close_after=*/12));
    DistOptions opts;
    opts.node = 0;
    opts.nodes = 2;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    fast_session(opts);
    r0 = make_pipe_executor(world, std::move(opts))->run();
  });
  std::thread consumer([&] {
    PipeWorld world(kBudget);
    auto mesh = StreamSocketTransport::tcp_mesh(1, 2, kBasePort);
    if (!mesh.ok()) {
      mesh_error = mesh.error().message;
      return;
    }
    mesh.value()->set_wire_faults(0,
                                  FaultPlan::seeded(9002, 400, 30, 20, 12));
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    fast_session(opts);
    r1 = make_pipe_executor(world, std::move(opts))->run();
    got = *world.got;
  });
  producer.join();
  consumer.join();
  ASSERT_TRUE(mesh_error.empty()) << mesh_error;
  EXPECT_EQ(r0.reason, StopReason::Quiescent) << r0.error;
  EXPECT_EQ(r1.reason, StopReason::Quiescent) << r1.error;
  EXPECT_EQ(got, kBudget) << "tokens lost across injected TCP faults";
  EXPECT_EQ(r0.fired + r1.fired, static_cast<std::uint64_t>(2 * kBudget));
  EXPECT_GT(r0.transport.faults_injected + r1.transport.faults_injected, 0u);
  EXPECT_GT(r0.transport.reconnects + r1.transport.reconnects, 0u);
}

TEST(DistRunner, ForkedSeededFaultDifferentialSweep) {
#ifdef MCAM_TSAN_BUILD
  GTEST_SKIP() << "fork-based fault differential is covered outside TSan";
#else
  // The acceptance sweep: >= 100 fault seeds, two real processes over a
  // Unix-socket mesh, every run seeing seeded frame drops plus one mid-run
  // socket close — and every run must still complete quiescent with merged
  // trace, worlds and fired counts equal to Sequential.
  std::uint64_t world_seed = 0;
  for (std::uint64_t s = 1; s <= 100 && world_seed == 0; ++s)
    if (eligible_for_two_nodes(s)) world_seed = s;
  ASSERT_NE(world_seed, 0u);
  const SeqBaseline seq = sequential_baseline(world_seed);
  const int fault_seeds = std::max(100, spec_count() > 50 ? spec_count() : 0);

  std::uint64_t faults = 0, reconnects = 0, replayed = 0, dups = 0;
  for (std::uint64_t fs = 1; fs <= static_cast<std::uint64_t>(fault_seeds);
       ++fs) {
    SCOPED_TRACE("fault seed " + std::to_string(fs));
    const std::string dir = make_temp_dir();
    ASSERT_FALSE(dir.empty());
    // Faults × in-node parallelism: recovery must preserve the differential
    // at every width, so the sweep cycles 1/2/4 workers per fault seed.
    const int workers = fs % 3 == 0 ? 1 : fs % 3 == 1 ? 2 : 4;
    SCOPED_TRACE("workers " + std::to_string(workers));

    std::vector<pid_t> pids;
    for (int node = 0; node < 2; ++node) {
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        run_fault_child_node(world_seed, fs, node, dir,
                             dir + "/result" + std::to_string(node), workers);
        ::_exit(4);  // unreachable
      }
      pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
      ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    std::vector<NodeOutcome> nodes(2);
    for (int node = 0; node < 2; ++node) {
      std::string why;
      ASSERT_TRUE(parse_child_outcome(dir + "/result" + std::to_string(node),
                                      &nodes[static_cast<std::size_t>(node)],
                                      &why))
          << "node " << node << ": " << why;
    }
    std::filesystem::remove_all(dir);

    EXPECT_EQ(nodes[0].report.fired + nodes[1].report.fired, seq.fired);
    EXPECT_EQ(merge_traces(nodes), seq.trace)
        << "fault-injected merged trace diverged";
    for (const NodeOutcome& node : nodes) {
      for (const std::string& line : node.local_world) {
        const std::string path = line.substr(0, line.find('='));
        const auto it = seq.world.find(path);
        ASSERT_NE(it, seq.world.end()) << path;
        EXPECT_EQ(line, it->second) << "local world diverged at " << path;
      }
      faults += node.report.transport.faults_injected;
      reconnects += node.report.transport.reconnects;
      replayed += node.report.transport.frames_replayed;
      dups += node.report.transport.dup_frames_dropped;
    }
    if (HasFatalFailure()) return;
  }
  // The sweep is vacuous unless the recovery machinery demonstrably ran.
  EXPECT_GT(faults, 0u);
  EXPECT_GT(reconnects, 0u);
  EXPECT_GT(replayed, 0u);
  EXPECT_GT(dups, 0u) << "no duplicate was ever discarded by sequence";
#endif
}

// ---------------------------------------------------------------------------
// Peer death: SIGKILL mid-run becomes a structured abort, not a hang

TEST(DistRunner, KilledPeerAbortsSurvivorWithStructuredError) {
#ifdef MCAM_TSAN_BUILD
  GTEST_SKIP() << "fork-based peer-death test is covered outside TSan";
#else
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Node 1, the consumer. A stop predicate counts scheduler polls and then
    // dies without a word — no Bye, no close, a real crash.
    PipeWorld world(1000);
    auto mesh = StreamSocketTransport::unix_mesh(1, 2, dir);
    if (!mesh.ok()) ::_exit(2);
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    auto executor = make_pipe_executor(world, std::move(opts));
    int polls = 0;
    RunOptions run;
    run.stop.push_back(StopCondition::when([&polls] {
      if (++polls >= 6) ::raise(SIGKILL);
      return false;
    }));
    (void)executor->run(run);
    ::_exit(3);  // survived the kill — should be unreachable
  }

  PipeWorld world(1000);
  auto mesh = StreamSocketTransport::unix_mesh(0, 2, dir);
  ASSERT_TRUE(mesh.ok()) << mesh.error().message;
  DistOptions opts;
  opts.node = 0;
  opts.nodes = 2;
  opts.transport = std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
  opts.gate_timeout_ms = 15000;  // bounds the test if the abort path breaks
  auto executor = make_pipe_executor(world, std::move(opts));
  const RunReport r = executor->run();
  EXPECT_EQ(r.reason, StopReason::Aborted);
  EXPECT_FALSE(r.error.empty());

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  if (WIFSIGNALED(status)) EXPECT_EQ(WTERMSIG(status), SIGKILL);
  std::filesystem::remove_all(dir);
#endif
}

// ---------------------------------------------------------------------------
// Graceful leave: a node hitting its own stop condition releases its peers

TEST(DistRunner, EarlyLeaverAbortsGatedPeerWithByeNotTimeout) {
  LoopbackHub hub(2);
  auto t0 = std::shared_ptr<MailboxTransport>(hub.endpoint(0));
  auto t1 = std::shared_ptr<MailboxTransport>(hub.endpoint(1));
  RunReport r0, r1;
  std::thread consumer([&] {
    PipeWorld world(300);
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.transport = t1;
    auto executor = make_pipe_executor(world, std::move(opts));
    r1 = executor->run({.stop = {StopCondition::max_steps(5)}});
  });
  std::thread producer([&] {
    PipeWorld world(300);
    DistOptions opts;
    opts.node = 0;
    opts.nodes = 2;
    opts.transport = t0;
    opts.gate_timeout_ms = 15000;
    auto executor = make_pipe_executor(world, std::move(opts));
    r0 = executor->run();
  });
  consumer.join();
  producer.join();
  EXPECT_EQ(r1.reason, StopReason::StepLimit);
  EXPECT_EQ(r1.steps, 5u);
  EXPECT_EQ(r0.reason, StopReason::Aborted);
  EXPECT_NE(r0.error.find("left the run"), std::string::npos) << r0.error;
}

// ---------------------------------------------------------------------------
// Handshake: divergent specifications refuse each other

TEST(DistRunner, MismatchedSpecificationsRefuseTheHandshake) {
  LoopbackHub hub(2);
  auto t0 = std::shared_ptr<MailboxTransport>(hub.endpoint(0));
  auto t1 = std::shared_ptr<MailboxTransport>(hub.endpoint(1));
  RunReport r0, r1;
  std::thread a([&] {
    PipeWorld world(10);
    DistOptions opts;
    opts.node = 0;
    opts.nodes = 2;
    opts.transport = t0;
    r0 = make_pipe_executor(world, std::move(opts))->run();
  });
  std::thread b([&] {
    PipeWorld world(10, "send_v2");  // structurally different build
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.transport = t1;
    r1 = make_pipe_executor(world, std::move(opts))->run();
  });
  a.join();
  b.join();
  for (const RunReport* r : {&r0, &r1}) {
    EXPECT_EQ(r->reason, StopReason::Aborted);
    EXPECT_FALSE(r->error.empty());
    EXPECT_TRUE(r->error.find("refus") != std::string::npos ||
                r->error.find("mismatch") != std::string::npos)
        << r->error;
    EXPECT_EQ(r->fired, 0u) << "no round may run after a refused handshake";
  }
}

// ---------------------------------------------------------------------------
// TCP, and the null-message machinery measured

TEST(DistRunner, TcpPipelineDeliversAndServicesNullRounds) {
  static constexpr int kBudget = 25;
  static constexpr std::uint16_t kBasePort = 43117;
  RunReport r0, r1;
  int got = -1;
  std::string mesh_error;
  std::thread producer([&] {
    PipeWorld world(kBudget);
    auto mesh = StreamSocketTransport::tcp_mesh(0, 2, kBasePort);
    if (!mesh.ok()) {
      mesh_error = mesh.error().message;
      return;
    }
    DistOptions opts;
    opts.node = 0;
    opts.nodes = 2;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    r0 = make_pipe_executor(world, std::move(opts))->run();
  });
  std::thread consumer([&] {
    PipeWorld world(kBudget);
    auto mesh = StreamSocketTransport::tcp_mesh(1, 2, kBasePort);
    if (!mesh.ok()) {
      mesh_error = mesh.error().message;
      return;
    }
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    r1 = make_pipe_executor(world, std::move(opts))->run();
    got = *world.got;
  });
  producer.join();
  consumer.join();
  ASSERT_TRUE(mesh_error.empty()) << mesh_error;
  EXPECT_EQ(r0.reason, StopReason::Quiescent) << r0.error;
  EXPECT_EQ(r1.reason, StopReason::Quiescent) << r1.error;
  EXPECT_EQ(got, kBudget) << "tokens lost crossing the TCP bridge";
  EXPECT_EQ(r0.fired + r1.fired, static_cast<std::uint64_t>(2 * kBudget));
  EXPECT_GT(r0.transport.frames_sent, 0u);
  EXPECT_GT(r1.transport.frames_sent, 0u);
  EXPECT_GT(r0.transport.bytes_received, 0u);
  EXPECT_GT(r1.transport.bytes_received, 0u);
  // The consumer's first round is provably empty (the round-1 transfer only
  // becomes visible at round 2), so NullRound frames must have crossed and
  // been counted by at least one side.
  EXPECT_GT(r0.transport.null_rounds_serviced +
                r1.transport.null_rounds_serviced,
            0u);
}

TEST(DistRunner, TcpMeshAcceptsExplicitHostList) {
  // Satellite of the batching PR: a per-peer host list ("host" and
  // "host:port" forms both resolved) replaces the loopback default, carried
  // through DistOptions::peer_hosts. On one machine the list still names
  // loopback — what the test pins is the resolution and dial path.
  static constexpr int kBudget = 10;
  static constexpr std::uint16_t kBasePort = 44217;
  const std::vector<std::string> hosts = {
      "localhost", "127.0.0.1:" + std::to_string(kBasePort + 1)};

  // A wrong-sized list is a structured construction error, not a hang.
  const auto bad = StreamSocketTransport::tcp_mesh(0, 2, kBasePort,
                                                   {"127.0.0.1"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("host"), std::string::npos)
      << bad.error().message;

  RunReport r0, r1;
  int got = -1;
  std::string mesh_error;
  std::thread producer([&] {
    PipeWorld world(kBudget);
    auto mesh = StreamSocketTransport::tcp_mesh(0, 2, kBasePort, hosts);
    if (!mesh.ok()) {
      mesh_error = mesh.error().message;
      return;
    }
    DistOptions opts;
    opts.node = 0;
    opts.nodes = 2;
    opts.peer_hosts = hosts;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    r0 = make_pipe_executor(world, std::move(opts))->run();
  });
  std::thread consumer([&] {
    PipeWorld world(kBudget);
    auto mesh = StreamSocketTransport::tcp_mesh(1, 2, kBasePort, hosts);
    if (!mesh.ok()) {
      mesh_error = mesh.error().message;
      return;
    }
    DistOptions opts;
    opts.node = 1;
    opts.nodes = 2;
    opts.peer_hosts = hosts;
    opts.transport =
        std::shared_ptr<MailboxTransport>(std::move(mesh.value()));
    r1 = make_pipe_executor(world, std::move(opts))->run();
    got = *world.got;
  });
  producer.join();
  consumer.join();
  ASSERT_TRUE(mesh_error.empty()) << mesh_error;
  EXPECT_EQ(r0.reason, StopReason::Quiescent) << r0.error;
  EXPECT_EQ(r1.reason, StopReason::Quiescent) << r1.error;
  EXPECT_EQ(got, kBudget) << "tokens lost on the host-list mesh";
}

}  // namespace
}  // namespace mcam::estelle
