// Property test: for randomly generated module graphs, all three executors
// (sequential, simulated-parallel under every mapping, real-thread) reach
// identical final states. This is the semantic core of the paper's claim
// that the generated implementation may be parallelized at all: the Estelle
// semantics make parallel execution observationally equivalent to
// sequential execution.
#include <gtest/gtest.h>

#include "asn1/value.hpp"
#include "common/rng.hpp"
#include "estelle/module.hpp"
#include "estelle/executor.hpp"

namespace mcam::estelle {
namespace {

/// Node in a random acyclic forwarding graph: accumulates received token
/// values and forwards tokens to 0..2 downstream neighbours.
class Node : public Module {
 public:
  explicit Node(std::string name)
      : Module(std::move(name), Attribute::Process) {
    auto& in = ip("in");
    trans("recv").when(in, 1).action(
        [this](Module&, const Interaction* msg) {
          const std::int64_t v = msg->value.as_int().value_or(0);
          sum += v;
          ++received;
          for (InteractionPoint* out : outs)
            out->output(Interaction(1, asn1::Value::integer(v + 1)));
        });
  }

  void add_out(InteractionPoint& peer) {
    const std::string name = "out" + std::to_string(outs.size());
    InteractionPoint& out = ip(name);
    connect(out, peer);
    outs.push_back(&out);
  }

  std::vector<InteractionPoint*> outs;
  std::int64_t sum = 0;
  int received = 0;
};

struct GraphResult {
  std::vector<std::int64_t> sums;
  std::vector<int> received;
  bool operator==(const GraphResult&) const = default;
};

/// Build a random DAG (edges only from lower to higher index — no cycles,
/// guaranteed termination), inject tokens at the sources, run, snapshot.
template <typename RunFn>
GraphResult run_random_graph(std::uint64_t seed, RunFn&& run) {
  common::Rng rng(seed);
  const int n = 6 + static_cast<int>(rng.below(10));
  const int tokens = 1 + static_cast<int>(rng.below(5));

  Specification spec("graph");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  std::vector<Node*> nodes;
  for (int i = 0; i < n; ++i)
    nodes.push_back(&sys.create_child<Node>("n" + std::to_string(i)));
  // Each node gets up to 2 forward edges.
  for (int i = 0; i + 1 < n; ++i) {
    const int fanout = static_cast<int>(rng.below(3));
    for (int e = 0; e < fanout; ++e) {
      const int target =
          i + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                      n - i - 1)));
      // A node has one "in" IP; multiple producers may not share it — use
      // dedicated inbox IPs per edge.
      Node& dst = *nodes[static_cast<std::size_t>(target)];
      InteractionPoint& inbox =
          dst.ip("in" + std::to_string(dst.ips().size()));
      // Wire an extra when-clause for the new inbox.
      dst.trans("recv+").when(inbox, 1).action(
          [&dst](Module&, const Interaction* msg) {
            const std::int64_t v = msg->value.as_int().value_or(0);
            dst.sum += v;
            ++dst.received;
            for (InteractionPoint* out : dst.outs)
              out->output(Interaction(1, asn1::Value::integer(v + 1)));
          });
      nodes[static_cast<std::size_t>(i)]->add_out(inbox);
    }
  }
  auto& driver = sys.create_child<Module>("driver", Attribute::Process);
  connect(driver.ip("out"), nodes[0]->ip("in"));
  spec.initialize();
  for (int t = 0; t < tokens; ++t)
    driver.ip("out").output(Interaction(1, asn1::Value::integer(t)));

  run(spec);

  GraphResult result;
  for (Node* node : nodes) {
    result.sums.push_back(node->sum);
    result.received.push_back(node->received);
  }
  return result;
}

class EquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceProperty, AllExecutorsAgreeOnRandomGraphs) {
  const std::uint64_t seed = GetParam();
  const GraphResult seq = run_random_graph(
      seed, [](Specification& s) { make_executor(s)->run(); });
  ASSERT_FALSE(seq.sums.empty());

  for (Mapping mapping :
       {Mapping::ThreadPerModule, Mapping::GroupedUnits,
        Mapping::ConnectionPerProcessor, Mapping::LayerPerProcessor}) {
    const GraphResult par =
        run_random_graph(seed, [mapping](Specification& s) {
          make_executor(s, {.kind = ExecutorKind::ParallelSim,
                            .processors = 4,
                            .mapping = mapping})
              ->run();
        });
    EXPECT_EQ(par, seq) << "mapping=" << mapping_name(mapping)
                        << " seed=" << seed;
  }

  const GraphResult thr = run_random_graph(seed, [](Specification& s) {
    make_executor(s, {.kind = ExecutorKind::Threaded, .threads = 4})->run();
  });
  EXPECT_EQ(thr, seq) << "threaded, seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Values(1, 7, 42, 99, 123, 500, 777, 2024,
                                           31337, 99999));

}  // namespace
}  // namespace mcam::estelle
