// WorkerPool unit tests: the epoch barrier under contention, stealing and
// its fairness counters, graceful shutdown with queued tasks, reuse across
// epochs and across Executor::run() calls, and oversubscription (more
// workers than tasks/shards). The pool is the substrate of the Threaded and
// Sharded backends, so these tests run under the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/sched.hpp"
#include "estelle/shard_executor.hpp"
#include "estelle/worker_pool.hpp"

namespace mcam::estelle {
namespace {

std::uint64_t total_executed(const WorkerPool& pool) {
  std::uint64_t n = 0;
  for (const auto& s : pool.worker_stats()) n += s.executed;
  return n;
}

std::uint64_t total_stolen(const WorkerPool& pool) {
  std::uint64_t n = 0;
  for (const auto& s : pool.worker_stats()) n += s.stolen;
  return n;
}

TEST(WorkerPoolTest, EpochBarrierCompletesEveryTaskBeforeReturning) {
  WorkerPool pool(4);
  std::atomic<int> done{0};
  const int kTasks = 64;
  const int kEpochs = 50;
  for (int e = 1; e <= kEpochs; ++e) {
    for (int k = 0; k < kTasks; ++k)
      pool.submit(k, [&done](int) { done.fetch_add(1); });
    EXPECT_EQ(pool.run_epoch(), static_cast<std::size_t>(kTasks));
    // The barrier: by the time run_epoch returns, every task of the epoch
    // has finished — no stragglers, under repeated contention.
    EXPECT_EQ(done.load(), e * kTasks);
    EXPECT_EQ(pool.pending(), 0u);
  }
  EXPECT_EQ(pool.epochs(), static_cast<std::uint64_t>(kEpochs));
  EXPECT_EQ(total_executed(pool), static_cast<std::uint64_t>(kTasks * kEpochs));
}

TEST(WorkerPoolTest, EpochResultsAreVisibleWithoutExtraSynchronization) {
  // Tasks write plain (non-atomic) memory; the epoch barrier must be the
  // happens-before edge that makes those writes readable from the caller.
  WorkerPool pool(4);
  std::vector<int> results(128, 0);
  for (int k = 0; k < 128; ++k)
    pool.submit(k, [&results, k](int) { results[static_cast<std::size_t>(k)] = k * k; });
  pool.run_epoch();
  for (int k = 0; k < 128; ++k)
    ASSERT_EQ(results[static_cast<std::size_t>(k)], k * k);
}

TEST(WorkerPoolTest, IdleWorkersStealFromLoadedDeques) {
  // All tasks land on worker 0's deque; each task blocks until every worker
  // of the pool is running one, so workers 1..3 are forced to steal.
  const int kWorkers = 4;
  WorkerPool pool(kWorkers);
  std::atomic<int> running{0};
  for (int k = 0; k < kWorkers; ++k) {
    pool.submit(0, [&running, kWorkers](int) {
      running.fetch_add(1);
      while (running.load() < kWorkers) std::this_thread::yield();
    });
  }
  pool.run_epoch();

  const auto stats = pool.worker_stats();
  EXPECT_EQ(total_executed(pool), static_cast<std::uint64_t>(kWorkers));
  EXPECT_EQ(total_stolen(pool), static_cast<std::uint64_t>(kWorkers - 1));
  // Fairness: with the rendezvous forcing full participation, every worker
  // executed exactly one task, and only worker 0's was home-grown.
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(stats[static_cast<std::size_t>(w)].executed, 1u) << "worker " << w;
    EXPECT_EQ(stats[static_cast<std::size_t>(w)].stolen, w == 0 ? 0u : 1u)
        << "worker " << w;
  }
}

TEST(WorkerPoolTest, ExecutingWorkerIdIsReportedToTheTask) {
  const int kWorkers = 3;
  WorkerPool pool(kWorkers);
  std::atomic<int> running{0};
  std::vector<int> ran_on(kWorkers, -1);
  for (int k = 0; k < kWorkers; ++k) {
    pool.submit(0, [&, k](int w) {
      ran_on[static_cast<std::size_t>(k)] = w;
      running.fetch_add(1);
      while (running.load() < kWorkers) std::this_thread::yield();
    });
  }
  pool.run_epoch();
  // Every worker id in range, all distinct (one task each by rendezvous).
  std::vector<int> seen(kWorkers, 0);
  for (int w : ran_on) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kWorkers);
    ++seen[static_cast<std::size_t>(w)];
  }
  for (int w = 0; w < kWorkers; ++w) EXPECT_EQ(seen[static_cast<std::size_t>(w)], 1);
}

TEST(WorkerPoolTest, ShutdownWithQueuedTasksIsGracefulAndDropsThem) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(3);
    for (int k = 0; k < 10; ++k) pool.submit(k, [&ran](int) { ran.fetch_add(1); });
    EXPECT_EQ(pool.pending(), 10u);
    // No run_epoch: destruction must join the parked workers without running
    // (or leaking) the queued tasks.
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(WorkerPoolTest, ShutdownImmediatelyAfterEpochIsGraceful) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int k = 0; k < 8; ++k) pool.submit(k, [&ran](int) { ran.fetch_add(1); });
    pool.run_epoch();
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPoolTest, EmptyEpochDoesNotWakeWorkers) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.run_epoch(), 0u);
  EXPECT_EQ(pool.epochs(), 0u);
  EXPECT_EQ(total_executed(pool), 0u);
}

TEST(WorkerPoolTest, FixedRingHoldsSteadyEpochsWithoutSpilling) {
  // Epochs within the ring capacity never touch the overflow vector — the
  // counter executors fold into rounds_with_allocation stays flat.
  WorkerPool pool(2);
  std::atomic<int> done{0};
  for (int e = 0; e < 20; ++e) {
    for (int k = 0; k < static_cast<int>(WorkerPool::kRingSlots); ++k)
      pool.submit(k % 2, [&done](int) { done.fetch_add(1); });
    pool.run_epoch();
  }
  EXPECT_EQ(done.load(), 20 * static_cast<int>(WorkerPool::kRingSlots));
  EXPECT_EQ(pool.spills(), 0u);
}

TEST(WorkerPoolTest, RingSpillsPastHighWaterAndPreservesFifo) {
  // A burst deeper than the ring spills; order stays FIFO across the spill
  // boundary (single worker, so no stealing can reorder).
  WorkerPool pool(1);
  const int kTasks = static_cast<int>(WorkerPool::kRingSlots) + 20;
  std::vector<int> order;
  for (int k = 0; k < kTasks; ++k)
    pool.submit(0, [&order, k](int) { order.push_back(k); });
  EXPECT_EQ(pool.run_epoch(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(pool.spills(), 20u);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int k = 0; k < kTasks; ++k) EXPECT_EQ(order[static_cast<std::size_t>(k)], k);
  // Back under high water: no further spills.
  pool.submit(0, [](int) {});
  pool.run_epoch();
  EXPECT_EQ(pool.spills(), 20u);
}

TEST(WorkerPoolTest, HelpingEpochExecutesOnTheCoordinator) {
  // One worker, two tasks that rendezvous: completing the epoch REQUIRES the
  // coordinating thread to drain one of them (run_epoch_helping's
  // pseudo-worker, stats slot worker_count()).
  WorkerPool pool(1);
  std::atomic<int> running{0};
  for (int k = 0; k < 2; ++k) {
    pool.submit(0, [&running](int) {
      running.fetch_add(1);
      while (running.load() < 2) std::this_thread::yield();
    });
  }
  EXPECT_EQ(pool.run_epoch_helping(), 2u);
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 2u);  // worker 0 + the helping coordinator
  EXPECT_EQ(stats[0].executed, 1u);
  EXPECT_EQ(stats[1].executed, 1u);  // the coordinator really participated
  EXPECT_EQ(stats[1].stolen, 1u);    // it has no queue of its own
}

TEST(WorkerPoolTest, LaunchAndWaitIdleHostLongRunningTasks) {
  // launch() returns while tasks run; wait_idle() is the quiesce point the
  // free-running executor uses before resizing or destroying the pool.
  WorkerPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  for (int k = 0; k < 2; ++k) {
    pool.submit(k, [&release, &finished](int) {
      while (!release.load()) std::this_thread::yield();
      finished.fetch_add(1);
    });
  }
  EXPECT_EQ(pool.launch(), 2u);
  EXPECT_EQ(finished.load(), 0);  // caller owns the thread while they run
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(finished.load(), 2);
}

TEST(WorkerPoolTest, OversubscriptionMoreWorkersThanTasks) {
  // 8 workers, 2 tasks per epoch: extra workers wake, find nothing, and
  // park again; the barrier still holds and counters stay consistent.
  WorkerPool pool(8);
  std::atomic<int> done{0};
  for (int e = 0; e < 20; ++e) {
    pool.submit(0, [&done](int) { done.fetch_add(1); });
    pool.submit(5, [&done](int) { done.fetch_add(1); });
    EXPECT_EQ(pool.run_epoch(), 2u);
  }
  EXPECT_EQ(done.load(), 40);
  EXPECT_EQ(total_executed(pool), 40u);
}

// ---------------------------------------------------------------------------
// Pool reuse through the executors.

/// Two independent workers inside one system module: every round has two
/// conflict-free candidates, so the Threaded backend uses its pool each
/// round.
struct ParallelWorld {
  Specification spec{"pw"};
  explicit ParallelWorld(int limit = 6) {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    for (int i = 0; i < 2; ++i) {
      auto& w = sys.create_child<Module>("w" + std::to_string(i),
                                         Attribute::Process);
      w.trans("tick")
          .provided([limit](Module& m, const Interaction*) {
            return m.state() < limit;
          })
          .action([](Module& m, const Interaction*) {
            m.set_state(m.state() + 1);
          });
    }
    spec.initialize();
  }
  void rearm() {
    for (auto& child : spec.root().children()[0]->children())
      child->set_state(0);
  }
};

TEST(WorkerPoolTest, ThreadedSchedulerReusesOnePoolAcrossRuns) {
  ParallelWorld world;
  ThreadedScheduler sched(world.spec, {.threads = 3});
  sched.run();
  ASSERT_NE(sched.pool(), nullptr);
  const WorkerPool* pool = sched.pool();
  const std::uint64_t epochs_after_first = pool->epochs();
  EXPECT_GT(epochs_after_first, 0u);

  // Second run: same pool object, more epochs — no teardown/respawn.
  world.rearm();
  sched.run();
  EXPECT_EQ(sched.pool(), pool);
  EXPECT_GT(pool->epochs(), epochs_after_first);
}

TEST(WorkerPoolTest, RunOptionsWorkerCountResizesThePool) {
  ParallelWorld world;
  ThreadedScheduler sched(world.spec, {.threads = 2});
  sched.run();
  EXPECT_EQ(sched.pool()->worker_count(), 2);
  EXPECT_EQ(sched.unit_count(), 2);

  world.rearm();
  sched.run({.worker_count = 5});
  EXPECT_EQ(sched.pool()->worker_count(), 5);

  // Width sticks for later runs that don't override it? No — the configured
  // width is restored once a run stops asking for a different one.
  world.rearm();
  sched.run();
  EXPECT_EQ(sched.pool()->worker_count(), 2);
}

TEST(WorkerPoolTest, ShardedExecutorReusesOnePoolAndCapsAtShardCount) {
  // Two independent system modules = two shards; ask for 8 workers and the
  // pool must cap at 2 (whole-shard stealing can't use more).
  Specification spec("two-shards");
  for (int i = 0; i < 2; ++i) {
    auto& sys = spec.root().create_child<Module>("sys" + std::to_string(i),
                                                 Attribute::SystemProcess);
    auto& w = sys.create_child<Module>("w", Attribute::Process);
    w.trans("tick")
        .provided([](Module& m, const Interaction*) { return m.state() < 9; })
        .action([](Module& m, const Interaction*) {
          m.set_state(m.state() + 1);
        });
  }
  spec.initialize();

  ShardedExecutor ex(spec, {.threads = 8});
  const RunReport report = ex.run();
  EXPECT_EQ(report.fired, 18u);
  ASSERT_NE(ex.pool(), nullptr);
  EXPECT_EQ(ex.pool()->worker_count(), 2);
  EXPECT_EQ(ex.unit_count(), 2);

  const WorkerPool* pool = ex.pool();
  const std::uint64_t epochs = pool->epochs();
  for (Module* sm : spec.system_modules())
    sm->children()[0]->set_state(0);
  ex.run();
  EXPECT_EQ(ex.pool(), pool);  // reused, not respawned
  EXPECT_GT(pool->epochs(), epochs);
}

}  // namespace
}  // namespace mcam::estelle
