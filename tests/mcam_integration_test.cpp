// End-to-end MCAM tests over the full Fig. 2 configuration: association,
// movie access/management/control, equipment control, CM streams, release —
// on both control stacks, with and without transport loss, with multiple
// clients and connections.
#include <gtest/gtest.h>

#include "mcam/testbed.hpp"

namespace mcam::core {
namespace {

using common::SimTime;

directory::MovieEntry preload_movie(Testbed& bed, const std::string& title,
                                    std::uint64_t frames = 100,
                                    double fps = 25.0) {
  directory::MovieEntry e;
  e.title = title;
  e.fps = fps;
  e.duration_frames = frames;
  e.location_host = bed.config().server_host;
  e.size_bytes = frames * 4000;
  e.rights = "public";
  auto id = bed.server().directory().add(e);
  EXPECT_TRUE(id.ok());
  e.id = id.value();
  return e;
}

class StackParamTest : public ::testing::TestWithParam<StackKind> {};

TEST_P(StackParamTest, AssociateQueryPlayRelease) {
  Testbed::Config cfg;
  cfg.stack = GetParam();
  Testbed bed(cfg);
  preload_movie(bed, "casablanca", 50);

  McamClient client = bed.client(0);
  auto assoc = client.associate("alice");
  ASSERT_TRUE(assoc.ok()) << assoc.error().message;
  EXPECT_EQ(bed.server().active_sessions(), 1u);

  // Select resolves through the movie directory.
  auto select = client.select_movie("casablanca");
  ASSERT_TRUE(select.ok()) << select.error().message;
  EXPECT_EQ(select.value().result, ResultCode::Success);
  const std::uint64_t movie = select.value().movie_id;

  // Attribute query (management).
  auto attrs = client.query_attributes(movie, {"fps", "duration", "format"});
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs.value().attrs.size(), 3u);
  EXPECT_EQ(attrs.value().attrs[1].value, "50");

  // Play: frames arrive on the client's SUA via MTP.
  mtp::StreamUserAgent& sua = bed.make_sua(0, 7000);
  auto play = client.play(movie, bed.client_host(0), 7000);
  ASSERT_TRUE(play.ok()) << play.error().message;
  EXPECT_EQ(play.value().result, ResultCode::Success);
  bed.advance_streams(SimTime::from_s(2.5));
  EXPECT_EQ(sua.stats().frames_complete, 50u);

  auto stop = client.stop(movie);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().position, 50u);

  auto release = client.release();
  ASSERT_TRUE(release.ok()) << release.error().message;
  EXPECT_EQ(bed.server().active_sessions(), 0u);
}

TEST_P(StackParamTest, CreateModifyDeleteLifecycle) {
  Testbed::Config cfg;
  cfg.stack = GetParam();
  Testbed bed(cfg);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("bob").ok());

  auto created = client.create_movie(
      "home-video", {{"fps", "30"}, {"duration", "200"}, {"format", "mjpeg"}});
  ASSERT_TRUE(created.ok()) << created.error().message;
  EXPECT_EQ(created.value().result, ResultCode::Success);
  const std::uint64_t movie = created.value().movie_id;

  // Creator owns it: rights attribute says "bob".
  auto rights = client.query_attributes(movie, {"rights"});
  ASSERT_TRUE(rights.ok());
  EXPECT_EQ(rights.value().attrs[0].value, "bob");

  // Duplicate title refused.
  auto dup = client.create_movie("home-video");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value().result, ResultCode::DuplicateMovie);

  // Modify and verify.
  ASSERT_TRUE(client.modify_attributes(movie, {{"rights", "public"}}).ok());
  rights = client.query_attributes(movie, {"rights"});
  EXPECT_EQ(rights.value().attrs[0].value, "public");

  auto deleted = client.delete_movie(movie);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted.value().result, ResultCode::Success);
  auto gone = client.select_movie("home-video");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().result, ResultCode::NoSuchMovie);
}

INSTANTIATE_TEST_SUITE_P(BothStacks, StackParamTest,
                         ::testing::Values(StackKind::EstelleGenerated,
                                           StackKind::IsodeHandCoded),
                         [](const auto& info) {
                           return info.param == StackKind::EstelleGenerated
                                      ? "EstelleGenerated"
                                      : "IsodeHandCoded";
                         });

TEST(McamIntegration, PauseResumePositioning) {
  Testbed bed(Testbed::Config{});
  preload_movie(bed, "long-movie", 250);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  const auto movie = client.select_movie("long-movie").value().movie_id;

  mtp::StreamUserAgent& sua = bed.make_sua(0, 7000);
  ASSERT_TRUE(client.play(movie, bed.client_host(0), 7000).ok());
  bed.advance_streams(SimTime::from_s(1));  // ~25 frames at 25fps
  const auto before_pause = sua.stats().frames_complete;
  EXPECT_GT(before_pause, 10u);
  EXPECT_LT(before_pause, 50u);

  ASSERT_TRUE(client.pause(movie).ok());
  bed.advance_streams(SimTime::from_s(1));
  // Emission stopped; at most in-flight frames drain after the pause.
  const auto during_pause = sua.stats().frames_complete;
  EXPECT_LE(during_pause, before_pause + 2);
  bed.advance_streams(SimTime::from_s(1));
  EXPECT_EQ(sua.stats().frames_complete, during_pause);

  ASSERT_TRUE(client.resume(movie).ok());
  bed.advance_streams(SimTime::from_s(1));
  EXPECT_GT(sua.stats().frames_complete, before_pause);

  auto stop = client.stop(movie);
  ASSERT_TRUE(stop.ok());
  EXPECT_GT(stop.value().position, before_pause);
  EXPECT_LT(stop.value().position, 250u);
}

TEST(McamIntegration, PlayFromStartFrame) {
  Testbed bed(Testbed::Config{});
  preload_movie(bed, "movie", 40);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  const auto movie = client.select_movie("movie").value().movie_id;
  mtp::StreamUserAgent& sua = bed.make_sua(0, 7000);
  std::vector<std::uint32_t> frames;
  sua.set_sink([&](std::uint32_t f, const common::Bytes&, bool) {
    frames.push_back(f);
  });
  ASSERT_TRUE(client.play(movie, bed.client_host(0), 7000, 30).ok());
  bed.advance_streams(SimTime::from_s(1));
  ASSERT_EQ(frames.size(), 10u);
  EXPECT_EQ(frames.front(), 30u);
}

TEST(McamIntegration, AccessControlEnforced) {
  Testbed::Config cfg;
  cfg.clients = 2;
  Testbed bed(cfg);
  McamClient alice = bed.client(0);
  McamClient bob = bed.client(1);
  ASSERT_TRUE(alice.associate("alice").ok());
  ASSERT_TRUE(bob.associate("bob").ok());

  const auto movie =
      alice.create_movie("private-video", {{"duration", "10"}})
          .value()
          .movie_id;

  // Bob cannot select, modify or delete alice's movie.
  EXPECT_EQ(bob.select_movie("private-video").value().result,
            ResultCode::AccessDenied);
  EXPECT_EQ(bob.modify_attributes(movie, {{"rights", "bob"}}).value().result,
            ResultCode::AccessDenied);
  EXPECT_EQ(bob.delete_movie(movie).value().result, ResultCode::AccessDenied);

  // Alice opens it up; now bob can select it.
  ASSERT_TRUE(alice.modify_attributes(movie, {{"rights", "public"}}).ok());
  EXPECT_EQ(bob.select_movie("private-video").value().result,
            ResultCode::Success);
}

TEST(McamIntegration, ProtocolErrorsSurfaceCleanly) {
  Testbed bed(Testbed::Config{});
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  // Play without select.
  auto play = client.play(1, "client1", 7000);
  ASSERT_TRUE(play.ok());
  EXPECT_EQ(play.value().result, ResultCode::NotSelected);
  // Stop without play.
  EXPECT_EQ(client.stop(1).value().result, ResultCode::NotPlaying);
  // Query of unknown movie.
  EXPECT_EQ(client.query_attributes(12345).value().result,
            ResultCode::NoSuchMovie);
  // Select of unknown title.
  EXPECT_EQ(client.select_movie("ghost").value().result,
            ResultCode::NoSuchMovie);
}

TEST(McamIntegration, EquipmentControlOverProtocol) {
  Testbed bed(Testbed::Config{});
  auto& eca = bed.server().eca();
  const auto cam = eca.register_device(equipment::Kind::Camera, "cam",
                                       {{"brightness", 50}});
  eca.register_device(equipment::Kind::Speaker, "spk", {{"volume", 30}});

  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  auto list = client.list_equipment();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().items.size(), 2u);
  auto cameras = client.list_equipment(
      static_cast<int>(equipment::Kind::Camera));
  ASSERT_TRUE(cameras.ok());
  ASSERT_EQ(cameras.value().items.size(), 1u);
  EXPECT_EQ(cameras.value().items[0].name, "cam");

  using equipment::Command;
  auto on = client.control_equipment(cam,
                                     static_cast<int>(Command::PowerOn));
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on.value().powered);
  auto set = client.control_equipment(
      cam, static_cast<int>(Command::SetParam), "brightness", 80);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value().value, 80);
  auto bad = client.control_equipment(
      999, static_cast<int>(Command::PowerOn));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().result, ResultCode::NoSuchEquipment);
}

TEST(McamIntegration, RecordingFromCamera) {
  Testbed bed(Testbed::Config{});
  const auto cam = bed.server().eca().register_device(
      equipment::Kind::Camera, "cam", {});
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());

  auto rec = client.record("my-recording", cam, {{"fps", "25"}});
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  ASSERT_EQ(rec.value().result, ResultCode::Success);
  const auto movie = rec.value().movie_id;
  // Camera is reserved + powered while recording.
  EXPECT_EQ(bed.server().eca().status(cam).value().reserved_by, "alice");
  EXPECT_TRUE(bed.server().eca().status(cam).value().powered);

  // Record 2 seconds of simulated time ⇒ ~50 frames at 25 fps.
  bed.advance_streams(SimTime::from_s(2));
  auto stopped = client.record_stop(movie);
  ASSERT_TRUE(stopped.ok());
  EXPECT_NEAR(static_cast<double>(stopped.value().frames), 50.0, 2.0);

  auto dur = client.query_attributes(movie, {"duration"});
  ASSERT_TRUE(dur.ok());
  EXPECT_EQ(dur.value().attrs[0].value,
            std::to_string(stopped.value().frames));
}

TEST(McamIntegration, TwoClientsThreeConnectionsFig2) {
  // The Fig. 2 shape: multiple clients, multiple server entities.
  Testbed::Config cfg;
  cfg.clients = 2;
  cfg.connections_per_client = 2;
  Testbed bed(cfg);
  preload_movie(bed, "shared-movie", 30);

  std::vector<McamClient> clients;
  for (int c = 0; c < 2; ++c)
    for (int k = 0; k < 2; ++k) clients.push_back(bed.client(c, k));

  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto assoc = clients[i].associate("user" + std::to_string(i));
    ASSERT_TRUE(assoc.ok()) << i << ": " << assoc.error().message;
  }
  EXPECT_EQ(bed.server().active_sessions(), 4u);

  // All four sessions select and query the same movie independently.
  for (auto& client : clients) {
    auto sel = client.select_movie("shared-movie");
    ASSERT_TRUE(sel.ok());
    EXPECT_EQ(sel.value().result, ResultCode::Success);
  }

  // Releasing one association leaves the others untouched.
  ASSERT_TRUE(clients[0].release().ok());
  EXPECT_EQ(bed.server().active_sessions(), 3u);
  auto still = clients[3].query_attributes(1, {"title"});
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value().attrs[0].value, "shared-movie");
}

TEST(McamIntegration, ControlSurvivesTransportLoss) {
  Testbed::Config cfg;
  cfg.control_loss = 0.15;  // only meaningful on the Estelle stack
  Testbed bed(cfg);
  preload_movie(bed, "movie-x", 10);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  for (int i = 0; i < 10; ++i) {
    auto sel = client.select_movie("movie-x");
    ASSERT_TRUE(sel.ok()) << "iteration " << i << ": " << sel.error().message;
    EXPECT_EQ(sel.value().result, ResultCode::Success);
  }
  // ARQ had to work for this to pass.
  EXPECT_GT(bed.connection(0).client_stack.transport->retransmissions() +
                bed.connection(0).server_stack.transport->retransmissions(),
            0u);
}

TEST(McamIntegration, StreamAndControlAreSeparateStacks) {
  // Table 1's architectural point: stream impairments must not disturb the
  // control connection.
  Testbed bed(Testbed::Config{});
  net::Impairments lossy;
  lossy.latency = SimTime::from_ms(2);
  lossy.loss = 0.3;
  bed.network().set_link(bed.config().server_host, bed.client_host(0), lossy);

  preload_movie(bed, "noisy-movie", 100);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  const auto movie = client.select_movie("noisy-movie").value().movie_id;
  mtp::StreamUserAgent& sua = bed.make_sua(0, 7000);
  ASSERT_TRUE(client.play(movie, bed.client_host(0), 7000).ok());
  bed.advance_streams(SimTime::from_s(5));

  // Stream suffered (lossy link), control still works perfectly.
  EXPECT_LT(sua.stats().packet_delivery_ratio(), 0.9);
  auto q = client.query_attributes(movie, {"title"});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().attrs[0].value, "noisy-movie");
}

}  // namespace
}  // namespace mcam::core
