// Tests for the MCAM protocol extensions: filter codec + MovieSearch over
// the wire, QoS-carrying PlayReq (§6 outlook), and PositionInd push
// notifications during playback.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mcam/testbed.hpp"

namespace mcam::core {
namespace {

using common::SimTime;
using directory::Filter;

// ---------------------------------------------------------------------------
// Filter wire codec

Filter random_filter(common::Rng& rng, int depth) {
  const auto name = [&] {
    std::string s;
    for (std::size_t i = 0, n = 1 + rng.below(8); i < n; ++i)
      s.push_back(static_cast<char>('a' + rng.below(26)));
    return s;
  };
  const int choice = depth <= 0 ? static_cast<int>(rng.below(4))
                                : static_cast<int>(rng.below(7));
  switch (choice) {
    case 0:
      return Filter::all();
    case 1:
      return Filter::present(name());
    case 2:
      return Filter::equal(name(), name());
    case 3:
      return Filter::substring(name(), name());
    case 4:
      return Filter::not_(random_filter(rng, depth - 1));
    default: {
      std::vector<Filter> kids;
      for (std::size_t i = 0, n = rng.below(4); i < n; ++i)
        kids.push_back(random_filter(rng, depth - 1));
      return choice == 5 ? Filter::and_(std::move(kids))
                         : Filter::or_(std::move(kids));
    }
  }
}

TEST(FilterCodec, BasicRoundTrips) {
  const Filter filters[] = {
      Filter::all(),
      Filter::present("title"),
      Filter::equal("format", "mjpeg"),
      Filter::substring("title", "news"),
      Filter::not_(Filter::equal("rights", "public")),
      Filter::and_({Filter::equal("format", "mpeg1"),
                    Filter::or_({Filter::substring("title", "a"),
                                 Filter::present("fps")})}),
  };
  for (const Filter& f : filters) {
    auto decoded = decode_filter(encode_filter(f));
    ASSERT_TRUE(decoded.ok()) << f.to_string();
    EXPECT_EQ(decoded.value(), f) << f.to_string();
  }
}

class FilterCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterCodecProperty, RandomFiltersRoundTripAndMatchIdentically) {
  common::Rng rng(GetParam());
  directory::MovieEntry probe;
  probe.title = "abcnews";
  probe.rights = "public";
  for (int i = 0; i < 150; ++i) {
    const Filter f = random_filter(rng, 4);
    auto decoded = decode_filter(encode_filter(f));
    ASSERT_TRUE(decoded.ok()) << f.to_string();
    EXPECT_EQ(decoded.value(), f);
    // Semantic equivalence, not just structural.
    EXPECT_EQ(decoded.value().matches(probe), f.matches(probe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterCodecProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(FilterCodec, RejectsMalformedNodes) {
  EXPECT_FALSE(decode_filter(asn1::Value::integer(5)).ok());
  EXPECT_FALSE(decode_filter(asn1::Value::context(9, asn1::Value::null())).ok());
  // Depth bomb.
  Filter f = Filter::all();
  for (int i = 0; i < 40; ++i) f = Filter::not_(f);
  EXPECT_FALSE(decode_filter(encode_filter(f)).ok());
}

TEST(McamPdusExt, SearchPdusRoundTrip) {
  MovieSearchReq req{Filter::and_({Filter::substring("title", "news"),
                                   Filter::equal("format", "mjpeg")}),
                     false};
  auto decoded = decode(encode(Pdu{req}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<MovieSearchReq>(decoded.value()) == req);

  MovieSearchResp resp;
  resp.result = ResultCode::Success;
  resp.hits.push_back(SearchHit{7, {{"title", "x"}, {"fps", "25"}}});
  resp.hits.push_back(SearchHit{9, {}});
  auto decoded2 = decode(encode(Pdu{resp}));
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(std::get<MovieSearchResp>(decoded2.value()) == resp);
}

TEST(McamPdusExt, PlayReqQosOptionalFields) {
  // Absent: wire identical to the pre-extension encoding (backwards compat).
  PlayReq plain{1, 0, "host", 7000, 0, 0};
  auto decoded = decode(encode(Pdu{plain}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<PlayReq>(decoded.value()) == plain);

  PlayReq with_qos{1, 0, "host", 7000, 150, 20};
  auto decoded2 = decode(encode(Pdu{with_qos}));
  ASSERT_TRUE(decoded2.ok());
  const auto& req = std::get<PlayReq>(decoded2.value());
  EXPECT_EQ(req.qos_max_delay_ms, 150u);
  EXPECT_EQ(req.qos_max_jitter_ms, 20u);
  EXPECT_GT(encode(Pdu{with_qos}).size(), encode(Pdu{plain}).size());
}

// ---------------------------------------------------------------------------
// End-to-end: search, QoS admission, notifications

directory::MovieEntry preload(Testbed& bed, const std::string& title,
                              directory::Format fmt, const std::string& rights,
                              std::uint64_t frames = 50) {
  directory::MovieEntry e;
  e.title = title;
  e.format = fmt;
  e.rights = rights;
  e.duration_frames = frames;
  e.location_host = bed.config().server_host;
  auto id = bed.server().directory().add(e);
  EXPECT_TRUE(id.ok());
  e.id = id.value();
  return e;
}

TEST(McamSearch, FilterSearchOverProtocol) {
  Testbed bed(Testbed::Config{});
  preload(bed, "news-06", directory::Format::Mjpeg, "public");
  preload(bed, "news-07", directory::Format::Mpeg1, "public");
  preload(bed, "home-movie", directory::Format::Mjpeg, "bob");

  McamClient alice = bed.client(0);
  ASSERT_TRUE(alice.associate("alice").ok());

  auto news = alice.search_movies(Filter::substring("title", "news"));
  ASSERT_TRUE(news.ok()) << news.error().message;
  EXPECT_EQ(news.value().hits.size(), 2u);

  auto mjpeg = alice.search_movies(Filter::equal("format", "mjpeg"));
  ASSERT_TRUE(mjpeg.ok());
  // home-movie is bob's: invisible to alice.
  ASSERT_EQ(mjpeg.value().hits.size(), 1u);
  EXPECT_EQ(mjpeg.value().hits[0].attrs[0].value, "news-06");

  auto everything = alice.search_movies(Filter::all());
  ASSERT_TRUE(everything.ok());
  EXPECT_EQ(everything.value().hits.size(), 2u);
}

TEST(McamSearch, ChainedSearchReachesPeerDsa) {
  Testbed bed(Testbed::Config{});
  directory::Dsa archive("archive");
  bed.server().directory().add_peer(archive);
  directory::MovieEntry remote;
  remote.title = "archived-news";
  remote.duration_frames = 10;
  remote.location_host = "archive";
  (void)archive.add(remote);

  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  auto chained = client.search_movies(Filter::substring("title", "archived"));
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained.value().hits.size(), 1u);
  auto local_only = client.search_movies(
      Filter::substring("title", "archived"), /*chained=*/false);
  ASSERT_TRUE(local_only.ok());
  EXPECT_EQ(local_only.value().hits.size(), 0u);
}

TEST(McamQos, UnreasonableBoundsRejected) {
  Testbed bed(Testbed::Config{});
  const auto movie = preload(bed, "m", directory::Format::Mjpeg, "public");
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_TRUE(client.select_movie("m").ok());

  auto bad = client.play(movie.id, bed.client_host(0), 7000, 0,
                         /*max_delay_ms=*/50'000);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().result, ResultCode::BadAttribute);

  auto good = client.play(movie.id, bed.client_host(0), 7000, 0,
                          /*max_delay_ms=*/200, /*max_jitter_ms=*/30);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().result, ResultCode::Success);
}

TEST(McamNotifications, PositionIndPushedDuringPlayback) {
  Testbed bed(Testbed::Config{});
  const auto movie =
      preload(bed, "long", directory::Format::Mjpeg, "public", 200);
  McamClient client = bed.client(0);
  ASSERT_TRUE(client.associate("alice").ok());
  ASSERT_TRUE(client.select_movie("long").ok());
  bed.make_sua(0, 7000);
  ASSERT_TRUE(client.play(movie.id, bed.client_host(0), 7000).ok());

  // 3 seconds of stream time at 25 fps ⇒ 75 frames; reports coalesce to the
  // latest position per movie, so at least one arrives with frame ≥ 50.
  bed.advance_streams(SimTime::from_s(3));
  const std::size_t got = client.poll_notifications();
  EXPECT_GE(got, 1u);
  ASSERT_FALSE(client.notifications().empty());
  EXPECT_EQ(client.notifications().front().movie_id, movie.id);
  EXPECT_GE(client.notifications().back().frame, 50u);

  // Ordinary calls still work with notifications interleaved.
  bed.advance_streams(SimTime::from_s(1));
  auto q = client.query_attributes(movie.id, {"title"});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().attrs[0].value, "long");

  (void)client.stop(movie.id);
  client.clear_notifications();
  bed.advance_streams(SimTime::from_s(1));
  EXPECT_EQ(client.poll_notifications(), 0u);  // stopped: no more reports
}

}  // namespace
}  // namespace mcam::core
