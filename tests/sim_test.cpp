// Simulated-multiprocessor engine tests: correctness of the cost model that
// every speedup experiment rests on.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mcam::sim {
namespace {

using common::SimTime;

CostModel zero_costs() {
  CostModel m;
  m.ctx_switch = {};
  m.inter_task_msg = {};
  m.sched_per_item = {};
  return m;
}

TEST(Engine, SequentialWorkAddsUp) {
  Engine engine(1, zero_costs());
  const int t = engine.add_task("t");
  for (int i = 0; i < 10; ++i)
    engine.post_external(t, SimTime::from_us(100), nullptr);
  const RunStats s = engine.run();
  EXPECT_EQ(s.items, 10u);
  EXPECT_EQ(s.makespan, SimTime::from_ms(1));
  EXPECT_EQ(s.busy, SimTime::from_ms(1));
}

TEST(Engine, PerfectSpeedupWithIndependentTasks) {
  for (int procs : {1, 2, 4}) {
    Engine engine(procs, zero_costs());
    for (int t = 0; t < 4; ++t) {
      const int task = engine.add_task("t" + std::to_string(t), t % procs);
      for (int i = 0; i < 5; ++i)
        engine.post_external(task, SimTime::from_us(100), nullptr);
    }
    const RunStats s = engine.run();
    // 4 tasks × 5 items × 100us = 2ms of work, split over `procs`.
    EXPECT_EQ(s.makespan.ns, SimTime::from_ms(2).ns / procs)
        << procs << " processors";
  }
}

TEST(Engine, ContextSwitchChargedOnTaskChange) {
  CostModel m = zero_costs();
  m.ctx_switch = SimTime::from_us(10);
  Engine engine(1, m);
  const int a = engine.add_task("a", 0);
  const int b = engine.add_task("b", 0);
  // a then b then a: two switches (a→b, b→a); first dispatch is free.
  engine.post_external(a, SimTime::from_us(100), nullptr, SimTime::from_us(0));
  engine.post_external(b, SimTime::from_us(100), nullptr,
                       SimTime::from_us(100));
  engine.post_external(a, SimTime::from_us(100), nullptr,
                       SimTime::from_us(220));
  const RunStats s = engine.run();
  EXPECT_EQ(s.switches, 2u);
  EXPECT_EQ(s.switch_time, SimTime::from_us(20));
}

TEST(Engine, CrossTaskMessageCost) {
  CostModel m = zero_costs();
  m.inter_task_msg = SimTime::from_us(5);
  Engine engine(2, m);
  const int a = engine.add_task("a", 0);
  const int b = engine.add_task("b", 1);
  engine.post_external(a, SimTime::from_us(10), [b](Context& ctx) {
    ctx.post(b, SimTime::from_us(10), nullptr);  // crosses tasks
  });
  const RunStats s = engine.run();
  EXPECT_EQ(s.cross_task_msgs, 1u);
  EXPECT_EQ(s.msg_time, SimTime::from_us(5));
  // 10 (a) + 5 (msg) + 10 (b) = 25us end-to-end.
  EXPECT_EQ(s.makespan, SimTime::from_us(25));
}

TEST(Engine, CentralizedSchedulerSerializes) {
  // With per-item scheduler cost S serialized, N items on P processors take
  // at least N*S even when the work itself is perfectly parallel.
  CostModel central = zero_costs();
  central.sched_per_item = SimTime::from_us(50);
  central.centralized_scheduler = true;

  CostModel decentral = central;
  decentral.centralized_scheduler = false;

  const auto run_with = [](CostModel m) {
    Engine engine(4, m);
    for (int t = 0; t < 4; ++t) {
      const int task = engine.add_task("t" + std::to_string(t), t);
      for (int i = 0; i < 8; ++i)
        engine.post_external(task, SimTime::from_us(10), nullptr);
    }
    return engine.run().makespan;
  };

  const SimTime central_time = run_with(central);
  const SimTime decentral_time = run_with(decentral);
  EXPECT_GT(central_time.ns, decentral_time.ns);
  // Centralized: 32 items × 50us scheduler = 1.6ms lower bound.
  EXPECT_GE(central_time, SimTime::from_us(32 * 50));
  // Decentralized: each processor pays its own 8×(50+10)us = 480us.
  EXPECT_EQ(decentral_time, SimTime::from_us(480));
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    CostModel m;
    Engine engine(3, m);
    std::vector<int> tasks;
    for (int t = 0; t < 5; ++t) tasks.push_back(engine.add_task("t", -1));
    for (int i = 0; i < 20; ++i)
      engine.post_external(tasks[static_cast<std::size_t>(i) % 5],
                           SimTime::from_us(10 + i), nullptr);
    return engine.run().makespan.ns;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, EarliestReadyItemRunsFirstWithinTask) {
  // A delayed item posted first must not block a ready item posted later.
  Engine engine(1, zero_costs());
  const int t = engine.add_task("t");
  std::vector<int> order;
  engine.post_external(
      t, SimTime::from_us(1), [&](Context&) { order.push_back(2); },
      SimTime::from_ms(10));
  engine.post_external(
      t, SimTime::from_us(1), [&](Context&) { order.push_back(1); },
      SimTime::from_us(0));
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Engine, SchedulerShareApproachesOneForTinyWork) {
  CostModel m = zero_costs();
  m.sched_per_item = SimTime::from_us(10);
  Engine engine(1, m);
  const int t = engine.add_task("t");
  for (int i = 0; i < 100; ++i)
    engine.post_external(t, SimTime::from_ns(100), nullptr);
  const RunStats s = engine.run();
  EXPECT_GT(s.scheduler_share(), 0.95);
}

TEST(Engine, StatsAccumulateAcrossRuns) {
  Engine engine(1, zero_costs());
  const int t = engine.add_task("t");
  engine.post_external(t, SimTime::from_us(10), nullptr);
  engine.run();
  engine.post_external(t, SimTime::from_us(10), nullptr,
                       engine.stats().makespan);
  const RunStats s = engine.run();
  EXPECT_EQ(s.items, 2u);
  EXPECT_EQ(s.makespan, SimTime::from_us(20));
}

TEST(Engine, RejectsBadConfig) {
  EXPECT_THROW(Engine(0), std::invalid_argument);
  Engine engine(2);
  EXPECT_THROW(engine.add_task("x", 5), std::out_of_range);
}

}  // namespace
}  // namespace mcam::sim
