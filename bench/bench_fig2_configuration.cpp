// Fig. 2 — "An example configuration".
//
// The figure shows two client workstations and three MCAM server entities on
// the multiprocessor: client #1 holds two control connections, client #2
// one; each control connection steers one CM stream. Part A reproduces that
// exact configuration end to end and reports per-entity delivery. Part B
// isolates the claim the figure illustrates — "all these server entities
// can run simultaneously on a multiprocessor system" — by driving a batch
// of control transactions through 1..32 simulated processors.
#include <cstdio>

#include "estelle/executor.hpp"
#include "mcam/testbed.hpp"

using namespace mcam;
using common::SimTime;
using core::Testbed;

namespace {

void preload(Testbed& bed, const std::string& title, std::uint64_t frames) {
  directory::MovieEntry e;
  e.title = title;
  e.duration_frames = frames;
  e.fps = 25.0;
  e.size_bytes = frames * 8000;
  e.location_host = bed.config().server_host;
  (void)bed.server().directory().add(e);
}

void part_a() {
  std::printf("== part A: the Fig. 2 configuration, end to end ==\n");
  Testbed::Config cfg;
  cfg.clients = 2;
  cfg.connections_per_client = 2;
  Testbed bed(cfg);
  preload(bed, "movie-a", 75);
  preload(bed, "movie-b", 75);
  preload(bed, "movie-c", 75);

  // The three server entities of the figure: (client1,conn1), (client1,conn2),
  // (client2,conn1). The fourth wired connection stays unused.
  struct Entity {
    int client;
    int conn;
    const char* movie;
    std::uint16_t port;
  };
  const Entity entities[] = {{0, 0, "movie-a", 7000},
                             {0, 1, "movie-b", 7001},
                             {1, 0, "movie-c", 7000}};

  std::vector<core::McamClient> clients;
  std::vector<mtp::StreamUserAgent*> suas;
  for (const Entity& entity : entities) {
    clients.push_back(bed.client(entity.client, entity.conn));
    auto& client = clients.back();
    (void)client.associate("user@client" + std::to_string(entity.client + 1));
    auto select = client.select_movie(entity.movie);
    suas.push_back(&bed.make_sua(entity.client, entity.port));
    (void)client.play(select.value().movie_id,
                      bed.client_host(entity.client), entity.port);
  }
  bed.advance_streams(SimTime::from_s(4));

  std::printf("%8s %6s %10s %10s %12s %10s\n", "entity", "host", "movie",
              "frames", "bytes", "jitter");
  for (std::size_t i = 0; i < std::size(entities); ++i) {
    const auto& s = suas[i]->stats();
    std::printf("%8zu client%-1d %10s %10llu %12llu %8.2fms\n", i + 1,
                entities[i].client + 1, entities[i].movie,
                static_cast<unsigned long long>(s.frames_complete),
                static_cast<unsigned long long>(s.bytes_received),
                s.jitter_ms);
  }
  std::printf("server sessions active: %zu\n\n", bed.server().active_sessions());
}

/// Build a Fig. 2 world, pre-inject association + `requests` queries on each
/// of the three connections, and return completion time under `processors`
/// (0 ⇒ sequential scheduler).
SimTime run_control_batch(int processors, int requests) {
  Testbed::Config cfg;
  cfg.clients = 2;
  cfg.connections_per_client = 2;
  Testbed bed(cfg);
  preload(bed, "movie-a", 10);

  const std::pair<int, int> conns[] = {{0, 0}, {0, 1}, {1, 0}};
  std::vector<estelle::InteractionPoint*> inboxes;
  for (auto [c, k] : conns) {
    auto& app = *bed.connection(c, k).app;
    app.mca().output(estelle::Interaction(
        static_cast<int>(core::Op::AssociateReq),
        core::encode(core::Pdu{core::AssociateReq{"batch", 1}})));
    for (int i = 0; i < requests; ++i)
      app.mca().output(estelle::Interaction(
          static_cast<int>(core::Op::AttrQueryReq),
          core::encode(core::Pdu{core::AttrQueryReq{1, {"title"}}})));
    inboxes.push_back(&app.mca());
  }
  const std::size_t expect = static_cast<std::size_t>(requests) + 1;
  auto done = [&] {
    for (auto* inbox : inboxes)
      if (inbox->queue_length() < expect) return false;
    return true;
  };

  estelle::ExecutorConfig runtime;  // sequential when processors == 0
  if (processors > 0) {
    runtime.kind = estelle::ExecutorKind::ParallelSim;
    runtime.processors = processors;
    runtime.mapping = estelle::Mapping::ConnectionPerProcessor;
  }
  auto executor = estelle::make_executor(bed.spec(), runtime);
  executor->run_until(done);
  return executor->now();
}

void part_b() {
  std::printf(
      "== part B: server entities in parallel (3 entities, 48 control\n"
      "transactions each, connection-per-processor mapping) ==\n\n");
  const int kRequests = 48;
  const SimTime seq = run_control_batch(0, kRequests);
  std::printf("%12s %14s %9s\n", "processors", "time", "speedup");
  std::printf("%12s %11.3f ms %9s\n", "sequential", seq.millis(), "1.00x");
  for (int procs : {1, 2, 4, 8, 32}) {
    const SimTime t = run_control_batch(procs, kRequests);
    std::printf("%12d %11.3f ms %8.2fx\n", procs, t.millis(),
                static_cast<double>(seq.ns) / static_cast<double>(t.ns));
  }
  std::printf(
      "\npaper reference: server entities run simultaneously on the KSR1;\n"
      "per-connection parallelism carries the speedup, client workstations\n"
      "(uniprocessors) bound it.\n");
}

}  // namespace

int main() {
  part_a();
  part_b();
  return 0;
}
