// Ablation: the transport design choices behind Table 1's "error
// correction: yes" row.
//
// The control stack owes its 100% reliability to go-back-N ARQ in the
// transport module. This bench sweeps the two knobs of that design — window
// size and retransmission timeout — under fixed 15% channel loss, and
// reports virtual completion time plus retransmission volume for a fixed
// message batch. Shape: tiny windows serialize (stop-and-wait-like), large
// windows waste retransmissions under go-back-N; an over-tight RTO floods
// the channel with spurious copies, an over-loose one idles it.
#include <cstdio>

#include "estelle/executor.hpp"
#include "osi/stack.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::Interaction;
using estelle::Module;

namespace {

struct Outcome {
  SimTime time{};
  std::uint64_t retransmissions = 0;
  std::uint64_t data_pdus = 0;
  bool complete = false;
};

Outcome run_case(int window, SimTime rto, double loss, int messages) {
  estelle::Specification spec("arq");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  osi::TransportModule::Config cfg;
  cfg.window = window;
  cfg.rto = rto;
  auto& a = sys.create_child<osi::TransportModule>("tpA", cfg);
  auto& b = sys.create_child<osi::TransportModule>("tpB", cfg);
  auto& ua = sys.create_child<Module>("userA", Attribute::Process);
  auto& ub = sys.create_child<Module>("userB", Attribute::Process);
  estelle::connect(ua.ip("svc"), a.upper());
  estelle::connect(ub.ip("svc"), b.upper());
  common::Rng rng(99);
  osi::join_transports(a, b, loss, &rng);
  spec.initialize();

  ua.ip("svc").output(Interaction(osi::kTConReq));
  for (int i = 0; i < messages; ++i)
    ua.ip("svc").output(Interaction(osi::kTDatReq,
                                    {static_cast<std::uint8_t>(i)}));

  auto executor = estelle::make_executor(spec, {.max_steps = 500000});
  executor->run_until([&] {
    return ub.ip("svc").queue_length() >= static_cast<std::size_t>(messages);
  });

  Outcome out;
  out.time = executor->now();
  out.retransmissions = a.retransmissions();
  out.data_pdus = a.data_pdus_sent();
  out.complete =
      ub.ip("svc").queue_length() >= static_cast<std::size_t>(messages);
  return out;
}

}  // namespace

int main() {
  const double kLoss = 0.15;
  const int kMessages = 64;
  std::printf(
      "ARQ ablation — %d TSDUs over a channel with %.0f%% loss\n"
      "(the design behind Table 1's control-path reliability)\n\n",
      kMessages, 100.0 * kLoss);

  std::printf("window sweep (rto = 20 ms):\n");
  std::printf("%8s %12s %16s %10s\n", "window", "time", "retransmissions",
              "complete");
  for (int window : {1, 2, 4, 8, 16, 32}) {
    const Outcome o = run_case(window, SimTime::from_ms(20), kLoss, kMessages);
    std::printf("%8d %9.3f ms %16llu %10s\n", window, o.time.millis(),
                static_cast<unsigned long long>(o.retransmissions),
                o.complete ? "yes" : "NO");
  }

  std::printf("\nRTO sweep (window = 8):\n");
  std::printf("%8s %12s %16s %10s\n", "rto", "time", "retransmissions",
              "complete");
  for (long long rto_ms : {2, 5, 10, 20, 50, 200}) {
    const Outcome o =
        run_case(8, SimTime::from_ms(rto_ms), kLoss, kMessages);
    std::printf("%6lldms %9.3f ms %16llu %10s\n", rto_ms, o.time.millis(),
                static_cast<unsigned long long>(o.retransmissions),
                o.complete ? "yes" : "NO");
  }

  std::printf(
      "\nall configurations deliver 100%% of the batch — reliability is a\n"
      "property of the ARQ design, not of a lucky parameter choice; the\n"
      "parameters trade completion time against retransmission volume.\n");
  return 0;
}
