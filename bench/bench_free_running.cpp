// Epochs vs free-running continuation dispatch (ExecutorKind::Sharded vs
// ExecutorKind::FreeRunning) on the sparse-activity hot-path workload.
//
// The sharded backend pays a coordinator epoch per round: a transfer-drain
// sweep over every interaction point, a ledger drain, candidate collection
// on the run thread, stats aggregation, and (on observed runs) the
// announcement replay — all global, all once per round. The free-running
// backend runs each shard as a continuation that loops fire-from-ready-set
// rounds locally and syncs only through round-stamped mailboxes, so its
// per-round overhead is independent of the idle population. Sweeping N idle
// entities at fixed K active shows exactly that: Sharded rounds/sec decays
// with N (the epoch sweep is O(N)), FreeRunning stays flat.
//
// Acceptance (ISSUE 5): at N=1024, K=8 FreeRunning must reach >= 1x Sharded
// rounds/sec, and the warmed FreeRunning run must report zero allocating
// rounds. Emits bench_free_running.json (argv[1] overrides) for the CI
// artifact trend, like bench_hot_path.json.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "estelle/executor.hpp"
#include "estelle/module.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::ExecutorConfig;
using estelle::ExecutorKind;
using estelle::Interaction;
using estelle::Module;
using estelle::RunReport;
using estelle::StopCondition;

namespace {

/// N-K idle consumers + K active modules (K/2 ping-pong pairs), one system
/// module. Never quiesces; runs are bounded by a round budget.
struct SparseWorld {
  std::unique_ptr<estelle::Specification> spec;
  std::vector<Module*> pongs;

  SparseWorld(int entities, int active) {
    spec = std::make_unique<estelle::Specification>("freerun");
    auto& sys =
        spec->root().create_child<Module>("pool", Attribute::SystemProcess);
    auto& mute = sys.create_child<Module>("mute", Attribute::Process);
    const int idle = entities - active;
    for (int i = 0; i < idle; ++i) {
      auto& m = sys.create_child<Module>("idle" + std::to_string(i),
                                         Attribute::Process);
      estelle::connect(mute.ip("o" + std::to_string(i)), m.ip("in"));
      m.trans("never").when(m.ip("in")).action(
          [](Module&, const Interaction*) {});
    }
    for (int p = 0; p < active / 2; ++p) {
      auto& a = sys.create_child<Module>("ping" + std::to_string(p),
                                         Attribute::Process);
      auto& b = sys.create_child<Module>("pong" + std::to_string(p),
                                         Attribute::Process);
      estelle::connect(a.ip("out"), b.ip("in"));
      estelle::connect(b.ip("out"), a.ip("in"));
      for (Module* m : {&a, &b}) {
        m->trans("hit")
            .when(m->ip("in"))
            .cost(SimTime::from_us(5))
            .action([m](Module&, const Interaction*) {
              m->ip("out").output(Interaction(1));
            });
      }
      pongs.push_back(&b);
    }
    spec->initialize();
    for (Module* b : pongs) b->ip("out").output(Interaction(1));
  }
};

struct Measurement {
  double wall_ms = 0;
  double rounds_per_sec = 0;
  unsigned long long fired = 0;
  unsigned long long steady_alloc_rounds = 0;  // second (warmed) run
  unsigned long long fallback_rounds = 0;
};

Measurement run_once(int entities, int active, std::uint64_t rounds,
                     ExecutorKind kind) {
  SparseWorld world(entities, active);
  ExecutorConfig cfg;
  cfg.kind = kind;
  cfg.threads = 1;  // one shard — measure dispatch overhead, not parallelism
  auto executor = estelle::make_executor(*world.spec, cfg);
  // Warm-up run sizes every persistent buffer; the measured run is the
  // steady state the counters certify.
  executor->run({.stop = {StopCondition::max_steps(rounds / 10 + 1)}});

  const auto start = std::chrono::steady_clock::now();
  const RunReport r =
      executor->run({.stop = {StopCondition::max_steps(rounds)}});
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  Measurement m;
  m.wall_ms = wall_ms;
  m.rounds_per_sec =
      wall_ms > 0 ? static_cast<double>(r.steps) / (wall_ms / 1e3) : 0;
  m.fired = r.fired;
  m.steady_alloc_rounds = r.rounds_with_allocation;
  m.fallback_rounds = r.free_running.fallback_rounds;
  return m;
}

Measurement best_of(int entities, int active, std::uint64_t rounds,
                    ExecutorKind kind, int reps = 3) {
  Measurement best = run_once(entities, active, rounds, kind);
  for (int i = 1; i < reps; ++i) {
    Measurement m = run_once(entities, active, rounds, kind);
    if (m.wall_ms < best.wall_ms) best = m;
  }
  return best;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kActive = 8;
  constexpr std::uint64_t kRounds = 2000;
  const std::vector<int> sweep = {64, 256, 1024, 4096};

  std::printf(
      "== epochs vs free-running: K=%d active among N entities, %llu rounds "
      "==\n\n",
      kActive, static_cast<unsigned long long>(kRounds));
  std::printf("%6s %16s %16s %10s | %10s %12s\n", "N", "sharded rnd/s",
              "free rnd/s", "speedup", "alloc rds", "(free)");

  std::string rows;
  bool meets_speed = false;
  bool meets_alloc = false;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const int n = sweep[i];
    const Measurement epochs =
        best_of(n, kActive, kRounds, ExecutorKind::Sharded);
    const Measurement free_run =
        best_of(n, kActive, kRounds, ExecutorKind::FreeRunning);
    const double speedup = epochs.rounds_per_sec > 0
                               ? free_run.rounds_per_sec / epochs.rounds_per_sec
                               : 0;
    std::printf("%6d %16.0f %16.0f %9.2fx | %10llu %12s\n", n,
                epochs.rounds_per_sec, free_run.rounds_per_sec, speedup,
                free_run.steady_alloc_rounds,
                free_run.steady_alloc_rounds == 0 ? "zero-alloc" : "ALLOCATES");
    if (n == 1024) {
      meets_speed = speedup >= 1.0;
      meets_alloc = free_run.steady_alloc_rounds == 0 &&
                    free_run.fallback_rounds == 0;
    }
    rows += "    {\"entities\": " + std::to_string(n) +
            ", \"active\": " + std::to_string(kActive) +
            ", \"rounds\": " + std::to_string(kRounds) +
            ", \"sharded\": {\"wall_ms\": " + num(epochs.wall_ms) +
            ", \"rounds_per_sec\": " + num(epochs.rounds_per_sec) +
            "}, \"free_running\": {\"wall_ms\": " + num(free_run.wall_ms) +
            ", \"rounds_per_sec\": " + num(free_run.rounds_per_sec) +
            ", \"steady_alloc_rounds\": " +
            std::to_string(free_run.steady_alloc_rounds) +
            ", \"fallback_rounds\": " +
            std::to_string(free_run.fallback_rounds) +
            "}, \"speedup\": " + num(speedup) + "}";
    rows += i + 1 < sweep.size() ? ",\n" : "\n";
  }

  std::printf(
      "\nacceptance @ N=1024, K=8: free-running %s >= 1x sharded rounds/sec; "
      "steady-state rounds %s zero-alloc (no fallback)\n",
      meets_speed ? "meets" : "MISSES", meets_alloc ? "meet" : "MISS");

  const char* json_path = argc > 1 ? argv[1] : "bench_free_running.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"bench_free_running\",\n"
                 "  \"active\": %d,\n  \"sweep\": [\n%s  ],\n"
                 "  \"acceptance\": {\"free_at_least_sharded\": %s, "
                 "\"steady_state_zero_alloc\": %s}\n}\n",
                 kActive, rows.c_str(), meets_speed ? "true" : "false",
                 meets_alloc ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }
  return meets_speed && meets_alloc ? 0 : 1;
}
