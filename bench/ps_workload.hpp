// The §5.1 test environment, reusable across benches.
//
// "We specified a simple test environment in Estelle with two protocol
// stacks connected by a simulated transport layer pipe. Both stacks consist
// of presentation and session layers, and an initiator or responder
// respectively. It is possible to create multiple connections. ... we
// transmitted very small P-Data units. This is the worst case for
// parallelization."
//
// build() assembles exactly that: per connection, a process parent module
// ("connN") holding initiator+presentation+session+transport on the client
// system module, and the mirror image with a responder on the server system
// module. The per-connection parent is what makes the paper's
// connection-per-processor mapping meaningful.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "estelle/executor.hpp"
#include "osi/presentation.hpp"
#include "osi/service.hpp"
#include "osi/session.hpp"
#include "osi/transport.hpp"

namespace mcam::bench {

using common::SimTime;
using estelle::Attribute;
using estelle::Interaction;
using estelle::Module;

/// Sends P-CONNECT, then `requests` small P-DATA units as fast as the stack
/// accepts them.
class Initiator : public Module {
 public:
  enum State { kInit = 0, kWaiting, kOpen };

  Initiator(std::string name, int requests, std::size_t payload_bytes,
            SimTime cost)
      : Module(std::move(name), Attribute::Process),
        payload_(payload_bytes, 0x5a) {
    auto& svc = ip("svc");
    trans("start")
        .from(kInit)
        .to(kWaiting)
        .cost(cost)
        .action([this](Module&, const Interaction*) {
          ip("svc").output(Interaction(osi::kPConReq, payload_));
        });
    trans("conf")
        .from(kWaiting)
        .when(svc, osi::kPConConf)
        .to(kOpen)
        .cost(cost)
        .action([](Module&, const Interaction*) {});
    trans("send")
        .from(kOpen)
        .cost(cost)
        .provided([this, requests](Module&, const Interaction*) {
          return sent_ < requests;
        })
        .action([this](Module&, const Interaction*) {
          ++sent_;
          ip("svc").output(Interaction(osi::kPDatReq, payload_));
        });
    trans("ignore")
        .when(svc)
        .priority(1000)
        .cost(cost)
        .action([](Module&, const Interaction*) {});
  }

  [[nodiscard]] int sent() const noexcept { return sent_; }

 private:
  common::Bytes payload_;
  int sent_ = 0;
};

/// Accepts the connection and counts arriving P-DATA units.
class Responder : public Module {
 public:
  explicit Responder(std::string name, SimTime cost)
      : Module(std::move(name), Attribute::Process) {
    auto& svc = ip("svc");
    trans("accept")
        .when(svc, osi::kPConInd)
        .cost(cost)
        .action([this](Module&, const Interaction*) {
          ip("svc").output(
              Interaction(osi::kPConResp, asn1::Value::boolean(true)));
        });
    trans("data")
        .when(svc, osi::kPDatInd)
        .cost(cost)
        .action([this](Module&, const Interaction*) { ++received_; });
    trans("ignore")
        .when(svc)
        .priority(1000)
        .cost(cost)
        .action([](Module&, const Interaction*) {});
  }

  [[nodiscard]] int received() const noexcept { return received_; }

 private:
  int received_ = 0;
};

struct PsWorkload {
  std::unique_ptr<estelle::Specification> spec;
  std::vector<Initiator*> initiators;
  std::vector<Responder*> responders;
  int connections = 0;
  int requests = 0;

  [[nodiscard]] bool done() const {
    for (const Responder* r : responders)
      if (r->received() < requests) return false;
    return true;
  }

  [[nodiscard]] std::size_t module_count() {
    return spec->root().subtree_size() - 1;
  }
};

struct PsConfig {
  int connections = 2;
  int requests = 64;
  std::size_t payload_bytes = 16;  // "very small P-Data units"
  SimTime endpoint_cost = SimTime::from_us(20);
  /// Per-PDU cost of the presentation/session/transport modules; zero keeps
  /// each layer's own default.
  SimTime layer_cost{};
  /// §3: client entities run on single-processor UNIX workstations; only
  /// the server machine is the KSR1 multiprocessor.
  bool uniprocessor_clients = true;
  /// Number of client workstations the connections are spread over (Fig. 2
  /// shows two); each is one Estelle systemprocess module.
  int client_machines = 1;
};

inline PsWorkload build_ps_workload(const PsConfig& cfg) {
  PsWorkload w;
  w.connections = cfg.connections;
  w.requests = cfg.requests;
  w.spec = std::make_unique<estelle::Specification>("ps-workload");
  std::vector<Module*> client_machines;
  for (int m = 0; m < std::max(1, cfg.client_machines); ++m) {
    auto& client_sys = w.spec->root().create_child<Module>(
        "client" + std::to_string(m + 1), Attribute::SystemProcess);
    client_sys.set_uniprocessor_host(cfg.uniprocessor_clients);
    client_machines.push_back(&client_sys);
  }
  auto& server_sys = w.spec->root().create_child<Module>(
      "server", Attribute::SystemProcess);

  for (int c = 0; c < cfg.connections; ++c) {
    const std::string tag = std::to_string(c + 1);
    Module& client_sys = *client_machines[static_cast<std::size_t>(c) %
                                          client_machines.size()];
    auto& cconn =
        client_sys.create_child<Module>("conn" + tag, Attribute::Process);
    auto& sconn =
        server_sys.create_child<Module>("conn" + tag, Attribute::Process);

    auto& initiator = cconn.create_child<Initiator>(
        "init" + tag, cfg.requests, cfg.payload_bytes, cfg.endpoint_cost);
    osi::PresentationModule::Config pres_cfg;
    osi::SessionModule::Config sess_cfg;
    osi::TransportModule::Config tp_cfg;
    if (cfg.layer_cost.ns > 0) {
      pres_cfg.per_ppdu_cost = cfg.layer_cost;
      sess_cfg.per_spdu_cost = cfg.layer_cost;
      tp_cfg.per_pdu_cost = cfg.layer_cost;
    }
    auto& cpres = cconn.create_child<osi::PresentationModule>("pres" + tag,
                                                              pres_cfg);
    auto& csess =
        cconn.create_child<osi::SessionModule>("sess" + tag, sess_cfg);
    auto& ctp =
        cconn.create_child<osi::TransportModule>("tp" + tag, tp_cfg);
    estelle::connect(initiator.ip("svc"), cpres.upper());
    estelle::connect(cpres.lower(), csess.upper());
    estelle::connect(csess.lower(), ctp.upper());

    auto& responder =
        sconn.create_child<Responder>("resp" + tag, cfg.endpoint_cost);
    auto& spres = sconn.create_child<osi::PresentationModule>("pres" + tag,
                                                              pres_cfg);
    auto& ssess =
        sconn.create_child<osi::SessionModule>("sess" + tag, sess_cfg);
    auto& stp =
        sconn.create_child<osi::TransportModule>("tp" + tag, tp_cfg);
    estelle::connect(responder.ip("svc"), spres.upper());
    estelle::connect(spres.lower(), ssess.upper());
    estelle::connect(ssess.lower(), stp.upper());

    estelle::connect(ctp.net(), stp.net());

    w.initiators.push_back(&initiator);
    w.responders.push_back(&responder);
  }
  w.spec->initialize();
  return w;
}

/// Completion time of a fresh workload under an arbitrary runtime.
inline SimTime run_workload(const PsConfig& cfg,
                            const estelle::ExecutorConfig& runtime) {
  PsWorkload w = build_ps_workload(cfg);
  auto executor = estelle::make_executor(*w.spec, runtime);
  executor->run_until([&] { return w.done(); });
  return executor->now();
}

/// Sequential completion time of a fresh workload.
inline SimTime run_sequential(const PsConfig& cfg) {
  return run_workload(cfg, {.kind = estelle::ExecutorKind::Sequential});
}

/// Parallel completion time of a fresh workload.
inline SimTime run_parallel(const PsConfig& cfg, int processors,
                            estelle::Mapping mapping,
                            sim::CostModel costs = {}) {
  estelle::ExecutorConfig runtime;
  runtime.kind = estelle::ExecutorKind::ParallelSim;
  runtime.processors = processors;
  runtime.mapping = mapping;
  runtime.costs = costs;
  return run_workload(cfg, runtime);
}

}  // namespace mcam::bench
