// Transport overhead of the distributed shard runtime.
//
// Two questions, one driver:
//
//   1. Overhead neutrality — a SINGLE-node Distributed group is the
//      FreeRunning round loop plus the (empty) protocol bookkeeping. On the
//      sparse hot-path workload (N entities, K active, bench_free_running's
//      fixture) at N=1024 it must hold >= 0.9x direct FreeRunning rounds/sec
//      and keep steady-state rounds allocation-free: distribution must cost
//      nothing until a second node actually exists.
//
//   2. Wire cost — a message-heavy two-node volley (16 same-round transfers
//      per peer per round, every one crossing the node boundary) measured
//      over each transport: loopback (in-process frame moves), Unix-domain
//      sockets batched AND unbatched, and TCP on localhost, reporting
//      rounds/sec, frames/sec, bytes/sec and data syscalls/round. This is
//      the §4 placement trade-off as a number: what one hop of process
//      isolation costs, and what per-peer round coalescing buys back.
//
// Gates (exit status, like bench_free_running): single-node neutrality as
// before, plus batched >= 2x unbatched rounds/sec over Unix sockets,
// syscalls/round reduced >= 4x by batching, a warmed send()+flush() of a
// 16-entry TransferBatch performing ZERO heap allocations (global operator
// new is instrumented below), the PR 9 session layer (sequencing +
// replay-ring retention) costing <= 10% rounds/sec on a fault-free volley
// versus the same run with reconnect_max_attempts = 0, and the PR 10
// in-node parallelism: on a message-heavy volley whose shards spread across
// the node's WorkerPool, workers=4 holds >= 0.9x the workers=1 rounds/sec
// (scaling assertion self-skips on a single-core host, where four threads
// on one core can only contend) and a warmed single-node parallel run keeps
// steady-state rounds allocation-free.
//
// Emits bench_transport.json (argv[1] overrides) for the CI artifact trend.
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "asn1/value.hpp"
#include "estelle/executor.hpp"
#include "estelle/module.hpp"
#include "estelle/transport/dist_runner.hpp"
#include "estelle/transport/frame.hpp"
#include "estelle/transport/socket_transport.hpp"
#include "estelle/transport/transport.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new bumps it, so a code path
// claiming to be allocation-free can be held to exactly zero.

namespace {
std::atomic<unsigned long long> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::DistOptions;
using estelle::ExecutorConfig;
using estelle::ExecutorKind;
using estelle::Interaction;
using estelle::MailboxTransport;
using estelle::Module;
using estelle::RunReport;
using estelle::StopCondition;

namespace {

/// bench_free_running's sparse fixture: N-K idle consumers + K/2 ping-pong
/// pairs in ONE system module. Never quiesces; bounded by a round budget.
struct SparseWorld {
  std::unique_ptr<estelle::Specification> spec;

  SparseWorld(int entities, int active) {
    spec = std::make_unique<estelle::Specification>("dist_sparse");
    auto& sys =
        spec->root().create_child<Module>("pool", Attribute::SystemProcess);
    auto& mute = sys.create_child<Module>("mute", Attribute::Process);
    const int idle = entities - active;
    for (int i = 0; i < idle; ++i) {
      auto& m = sys.create_child<Module>("idle" + std::to_string(i),
                                         Attribute::Process);
      estelle::connect(mute.ip("o" + std::to_string(i)), m.ip("in"));
      m.trans("never").when(m.ip("in")).action(
          [](Module&, const Interaction*) {});
    }
    std::vector<Module*> pongs;
    for (int p = 0; p < active / 2; ++p) {
      auto& a = sys.create_child<Module>("ping" + std::to_string(p),
                                         Attribute::Process);
      auto& b = sys.create_child<Module>("pong" + std::to_string(p),
                                         Attribute::Process);
      estelle::connect(a.ip("out"), b.ip("in"));
      estelle::connect(b.ip("out"), a.ip("in"));
      for (Module* m : {&a, &b}) {
        m->trans("hit")
            .when(m->ip("in"))
            .cost(SimTime::from_us(5))
            .action([m](Module&, const Interaction*) {
              m->ip("out").output(Interaction(1));
            });
      }
      pongs.push_back(&b);
    }
    spec->initialize();
    for (Module* b : pongs) b->ip("out").output(Interaction(1));
  }
};

/// `lanes` independent ping-pong pairs split across two system modules, one
/// ball in flight per lane per direction: every round each node fires all of
/// its lane modules and ships `lanes` same-stamp transfers to the other node
/// — the message-heavy shape transfer batching exists for. Bounded by steps.
struct VolleyWorld {
  estelle::Specification spec{"volley"};

  explicit VolleyWorld(int lanes) {
    auto& asys = spec.root().create_child<Module>("a", Attribute::SystemProcess);
    auto& bsys = spec.root().create_child<Module>("b", Attribute::SystemProcess);
    std::vector<Module*> lefts;
    std::vector<Module*> rights;
    for (int lane = 0; lane < lanes; ++lane) {
      auto& left = asys.create_child<Module>("w" + std::to_string(lane),
                                             Attribute::Process);
      auto& right = bsys.create_child<Module>("w" + std::to_string(lane),
                                              Attribute::Process);
      estelle::connect(left.ip("out"), right.ip("in"));
      estelle::connect(right.ip("out"), left.ip("in"));
      for (Module* m : {&left, &right}) {
        estelle::InteractionPoint* out = &m->ip("out");
        m->trans("hit").when(m->ip("in")).cost(SimTime::from_us(5)).action(
            [out](Module& mm, const Interaction* msg) {
              out->output(Interaction(1, msg->value));
              mm.set_state(mm.state() + 1);
            });
      }
      lefts.push_back(&left);
      rights.push_back(&right);
    }
    spec.initialize();
    // A ball in each direction keeps both nodes shipping `lanes` transfers
    // every round; a single ball would leave each node idle every other
    // round and halve the effective transfers/round/peer.
    for (int lane = 0; lane < lanes; ++lane) {
      lefts[static_cast<std::size_t>(lane)]->ip("out").output(
          Interaction(1, asn1::Value::integer(lane)));
      rights[static_cast<std::size_t>(lane)]->ip("out").output(
          Interaction(1, asn1::Value::integer(lane + lanes)));
    }
  }
};

/// VolleyWorld with every lane module in its OWN system module: lane i's
/// left endpoint becomes shard 2i (node 0 of a two-node group), its right
/// endpoint shard 2i+1 (node 1) — so each node owns `lanes` shards and the
/// in-node WorkerPool actually has work to deal. The single-system-module
/// VolleyWorld above can never engage node-parallel dispatch (one local
/// shard per node is the documented sequential fallback).
struct ParVolleyWorld {
  estelle::Specification spec{"par_volley"};

  explicit ParVolleyWorld(int lanes) {
    std::vector<Module*> lefts;
    std::vector<Module*> rights;
    for (int lane = 0; lane < lanes; ++lane) {
      auto& lsys = spec.root().create_child<Module>(
          "l" + std::to_string(lane), Attribute::SystemProcess);
      auto& rsys = spec.root().create_child<Module>(
          "r" + std::to_string(lane), Attribute::SystemProcess);
      auto& left = lsys.create_child<Module>("w", Attribute::Process);
      auto& right = rsys.create_child<Module>("w", Attribute::Process);
      estelle::connect(left.ip("out"), right.ip("in"));
      estelle::connect(right.ip("out"), left.ip("in"));
      for (Module* m : {&left, &right}) {
        estelle::InteractionPoint* out = &m->ip("out");
        m->trans("hit").when(m->ip("in")).cost(SimTime::from_us(5)).action(
            [out](Module& mm, const Interaction* msg) {
              out->output(Interaction(1, msg->value));
              mm.set_state(mm.state() + 1);
            });
      }
      lefts.push_back(&left);
      rights.push_back(&right);
    }
    spec.initialize();
    for (int lane = 0; lane < lanes; ++lane) {
      lefts[static_cast<std::size_t>(lane)]->ip("out").output(
          Interaction(1, asn1::Value::integer(lane)));
      rights[static_cast<std::size_t>(lane)]->ip("out").output(
          Interaction(1, asn1::Value::integer(lane + lanes)));
    }
  }
};

struct Measurement {
  double wall_ms = 0;
  double rounds_per_sec = 0;
  double frames_per_sec = 0;
  double bytes_per_sec = 0;
  double syscalls_per_round = 0;
  unsigned long long fired = 0;
  unsigned long long frames_batched = 0;
  unsigned long long steady_alloc_rounds = 0;
  unsigned long long reconnects = 0;
  unsigned long long frames_replayed = 0;
  unsigned long long node_workers = 0;
  unsigned long long parallel_rounds = 0;
};

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Single node, no transport: the loopback-neutrality side of the gate.
Measurement run_single(int entities, int active, std::uint64_t rounds,
                       bool distributed) {
  SparseWorld world(entities, active);
  ExecutorConfig cfg;
  cfg.kind = distributed ? ExecutorKind::Distributed : ExecutorKind::FreeRunning;
  cfg.threads = 1;  // one shard — measure dispatch overhead, not parallelism
  if (distributed) {
    DistOptions opts;
    opts.worker_count = 1;  // pin the sequential per-node loop explicitly
    cfg.backend_options = opts;
  }
  auto executor = estelle::make_executor(*world.spec, cfg);
  executor->run({.stop = {StopCondition::max_steps(rounds / 10 + 1)}});

  const auto start = std::chrono::steady_clock::now();
  const RunReport r =
      executor->run({.stop = {StopCondition::max_steps(rounds)}});
  Measurement m;
  m.wall_ms = wall_since(start);
  m.rounds_per_sec =
      m.wall_ms > 0 ? static_cast<double>(r.steps) / (m.wall_ms / 1e3) : 0;
  m.fired = r.fired;
  m.steady_alloc_rounds = r.rounds_with_allocation;
  return m;
}

/// Two nodes over `make_transport(node)`, volleying for `rounds` rounds.
/// `tweak`, when set, adjusts each node's DistOptions before launch (the
/// session-overhead gate toggles the reconnect/replay layer with it).
Measurement run_pair(
    int lanes, std::uint64_t rounds, bool batch,
    const std::function<std::shared_ptr<MailboxTransport>(int)>&
        make_transport,
    const std::function<void(DistOptions&)>& tweak = {}) {
  std::vector<RunReport> reports(2);
  std::vector<std::string> errors(2);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int node = 0; node < 2; ++node)
    threads.emplace_back([&, node] {
      VolleyWorld world(lanes);
      std::shared_ptr<MailboxTransport> transport = make_transport(node);
      if (transport == nullptr) {
        errors[static_cast<std::size_t>(node)] = "transport construction failed";
        return;
      }
      DistOptions opts;
      opts.node = node;
      opts.nodes = 2;
      opts.transport = std::move(transport);
      opts.batch_transfers = batch;
      if (tweak) tweak(opts);
      ExecutorConfig cfg;
      cfg.kind = ExecutorKind::Distributed;
      cfg.backend_options = opts;
      auto executor = estelle::make_executor(world.spec, cfg);
      reports[static_cast<std::size_t>(node)] =
          executor->run({.stop = {StopCondition::max_steps(rounds)}});
    });
  for (std::thread& t : threads) t.join();
  Measurement m;
  m.wall_ms = wall_since(start);
  for (const std::string& e : errors)
    if (!e.empty()) {
      std::fprintf(stderr, "pair run failed: %s\n", e.c_str());
      return m;
    }
  unsigned long long frames = 0, bytes = 0, syscalls = 0;
  for (const RunReport& r : reports)
    if (!r.error.empty())
      std::fprintf(stderr, "pair run aborted: %s\n", r.error.c_str());
  for (const RunReport& r : reports) {
    frames += r.transport.frames_sent;
    bytes += r.transport.bytes_sent;
    syscalls += r.transport.syscalls;
    m.frames_batched += r.transport.frames_batched;
    m.reconnects += r.transport.reconnects;
    m.frames_replayed += r.transport.frames_replayed;
    m.fired += r.fired;
  }
  const double secs = m.wall_ms / 1e3;
  if (secs > 0) {
    m.rounds_per_sec = static_cast<double>(reports[0].steps) / secs;
    m.frames_per_sec = static_cast<double>(frames) / secs;
    m.bytes_per_sec = static_cast<double>(bytes) / secs;
  }
  if (reports[0].steps > 0)
    m.syscalls_per_round = static_cast<double>(syscalls) /
                           static_cast<double>(reports[0].steps);
  return m;
}

/// Two nodes over loopback on the multi-shard ParVolleyWorld, `workers`
/// continuations per node: the node-parallel half of the PR 10 gate. Every
/// round each node deals `lanes` shard rounds to its pool while the run
/// thread pumps the hub.
Measurement run_par_pair(int lanes, std::uint64_t rounds, int workers) {
  auto hub = std::make_shared<estelle::LoopbackHub>(2);
  std::vector<RunReport> reports(2);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int node = 0; node < 2; ++node)
    threads.emplace_back([&, node] {
      ParVolleyWorld world(lanes);
      DistOptions opts;
      opts.node = node;
      opts.nodes = 2;
      opts.transport =
          std::shared_ptr<MailboxTransport>(hub->endpoint(node));
      opts.worker_count = workers;
      ExecutorConfig cfg;
      cfg.kind = ExecutorKind::Distributed;
      cfg.backend_options = opts;
      auto executor = estelle::make_executor(world.spec, cfg);
      reports[static_cast<std::size_t>(node)] =
          executor->run({.stop = {StopCondition::max_steps(rounds)}});
    });
  for (std::thread& t : threads) t.join();
  Measurement m;
  m.wall_ms = wall_since(start);
  for (const RunReport& r : reports)
    if (!r.error.empty())
      std::fprintf(stderr, "par pair aborted: %s\n", r.error.c_str());
  for (const RunReport& r : reports) {
    m.fired += r.fired;
    m.parallel_rounds += r.transport.parallel_shard_rounds;
  }
  m.node_workers = reports[0].transport.node_workers;
  const double secs = m.wall_ms / 1e3;
  if (secs > 0)
    m.rounds_per_sec = static_cast<double>(reports[0].steps) / secs;
  return m;
}

/// Warmed single-node parallel run: after a warmup run on the same executor
/// (pool built, ready scopes and mailboxes at steady state), a measured run
/// at width 4 must report ZERO rounds with allocation — dealing a round to
/// the pool costs no heap (the submit capture fits std::function's inline
/// storage, deltas are preallocated per shard).
struct ParAllocProbe {
  bool ok = false;
  unsigned long long steady_alloc_rounds = 0;
  unsigned long long parallel_rounds = 0;
  unsigned long long node_workers = 0;
};

ParAllocProbe probe_parallel_allocations(int lanes, std::uint64_t rounds) {
  ParAllocProbe probe;
  ParVolleyWorld world(lanes);
  DistOptions opts;
  opts.worker_count = 4;  // single node, no transport: pure in-node pool
  ExecutorConfig cfg;
  cfg.kind = ExecutorKind::Distributed;
  cfg.backend_options = opts;
  auto executor = estelle::make_executor(world.spec, cfg);
  executor->run({.stop = {StopCondition::max_steps(rounds / 10 + 1)}});
  const RunReport r =
      executor->run({.stop = {StopCondition::max_steps(rounds)}});
  if (!r.error.empty()) {
    std::fprintf(stderr, "par alloc probe aborted: %s\n", r.error.c_str());
    return probe;
  }
  probe.ok = true;
  probe.steady_alloc_rounds = r.rounds_with_allocation;
  probe.parallel_rounds = r.transport.parallel_shard_rounds;
  probe.node_workers = r.transport.node_workers;
  return probe;
}

/// Warmed send()+flush() of a 16-entry TransferBatch over a socketpair,
/// single-threaded, with the global allocation counter around the measured
/// window: the pooled encode buffer and the segment chain must make the
/// steady-state send path exactly zero-alloc (the receive side is drained
/// outside the window — decode hands out owned Interaction state by design).
struct SendAllocProbe {
  bool ok = false;
  unsigned long long allocs = 0;
  unsigned long long iterations = 0;
};

SendAllocProbe probe_send_allocations() {
  SendAllocProbe probe;
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return probe;
  auto sender = estelle::StreamSocketTransport::from_fds({{1, sv[0]}});
  auto receiver = estelle::StreamSocketTransport::from_fds({{0, sv[1]}});
  estelle::Frame f;
  f.type = estelle::FrameType::TransferBatch;
  f.round = 1;
  for (int i = 0; i < 16; ++i) {
    estelle::TransferEntry e;
    e.channel = static_cast<std::uint32_t>(i);
    e.dir = 0;
    e.sent_at_ns = i;
    e.msg.kind = 1;
    e.msg.payload = common::Bytes(32, 0x5a);
    f.entries.push_back(std::move(e));
  }
  estelle::Frame in;
  int from = 0;
  std::string err;
  const auto drain = [&] {
    while (receiver->recv(&from, &in, 0, &err) ==
           estelle::MailboxTransport::RecvOutcome::kFrame) {
    }
  };
  for (int i = 0; i < 200; ++i) {  // warm encode buffer, pool, kernel path
    if (!sender->send(1, f).ok()) return probe;
    sender->flush();
    drain();
  }
  for (int i = 0; i < 1000; ++i) {
    const unsigned long long before =
        g_allocs.load(std::memory_order_relaxed);
    if (!sender->send(1, f).ok()) return probe;
    sender->flush();
    probe.allocs += g_allocs.load(std::memory_order_relaxed) - before;
    ++probe.iterations;
    drain();  // off the clock: keep the socketpair buffer empty
  }
  probe.ok = true;
  return probe;
}

template <typename F>
Measurement best_of(int reps, F run) {
  Measurement best = run();
  for (int i = 1; i < reps; ++i) {
    const Measurement m = run();
    if (m.wall_ms > 0 && (best.wall_ms == 0 || m.wall_ms < best.wall_ms))
      best = m;
  }
  return best;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kEntities = 1024;
  constexpr int kActive = 8;
  constexpr std::uint64_t kSingleRounds = 2000;
  constexpr int kLanes = 16;       // transfers per round per peer (syscall gate)
  constexpr int kHeavyLanes = 64;  // message-heavy volley (throughput gate)
  constexpr std::uint64_t kPairRounds = 1500;
  constexpr int kParLanes = 16;    // shards per node in the node-parallel sweep
  constexpr std::uint64_t kParRounds = 1000;

  // ---- gate: single-node Distributed vs direct FreeRunning ---------------
  std::printf("== single node, N=%d entities, K=%d active, %llu rounds ==\n",
              kEntities, kActive,
              static_cast<unsigned long long>(kSingleRounds));
  const Measurement direct = best_of(
      3, [&] { return run_single(kEntities, kActive, kSingleRounds, false); });
  const Measurement neutral = best_of(
      3, [&] { return run_single(kEntities, kActive, kSingleRounds, true); });
  const double ratio = direct.rounds_per_sec > 0
                           ? neutral.rounds_per_sec / direct.rounds_per_sec
                           : 0;
  std::printf("%22s %16.0f rounds/s\n", "free-running", direct.rounds_per_sec);
  std::printf("%22s %16.0f rounds/s  (%.2fx, %s)\n", "distributed (1 node)",
              neutral.rounds_per_sec, ratio,
              neutral.steady_alloc_rounds == 0 ? "zero-alloc" : "ALLOCATES");
  const bool meets_ratio = ratio >= 0.9;
  const bool meets_alloc = neutral.steady_alloc_rounds == 0;

  // ---- wire cost: 2 nodes over each transport -----------------------------
  std::printf(
      "\n== two nodes, %llu rounds per node (lanes = transfers/round/peer) "
      "==\n",
      static_cast<unsigned long long>(kPairRounds));
  std::printf("%16s %6s %10s %12s %12s %14s %12s\n", "transport", "lanes",
              "wall ms", "rounds/s", "frames/s", "bytes/s", "syscalls/rnd");

  struct Row {
    const char* name;
    int lanes;
    Measurement m;
  };
  std::vector<Row> rows;

  rows.push_back({"loopback", kLanes, best_of(3, [&] {
                    auto hub = std::make_shared<estelle::LoopbackHub>(2);
                    return run_pair(kLanes, kPairRounds, true, [hub](int node) {
                      return std::shared_ptr<MailboxTransport>(
                          hub->endpoint(node));
                    });
                  })});
  Measurement session_gate_on;
  Measurement session_off;
  {
    const std::string dir = "/tmp/mcam_bench_transport";
    const auto unix_pair = [&](int lanes, bool batch,
                               const std::function<void(DistOptions&)>& tweak =
                                   {}) {
      return best_of(3, [&] {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        return run_pair(
            lanes, kPairRounds, batch,
            [&dir](int node) {
              auto mesh =
                  estelle::StreamSocketTransport::unix_mesh(node, 2, dir);
              return mesh.ok() ? std::shared_ptr<MailboxTransport>(
                                     std::move(mesh.value()))
                               : nullptr;
            },
            tweak);
      });
    };
    rows.push_back({"unix batched", kLanes, unix_pair(kLanes, true)});
    rows.push_back({"unix unbatched", kLanes, unix_pair(kLanes, false)});
    // The throughput gate compares at the message-heavy lane count, where
    // per-frame syscall cost dominates the round; the 16-lane pair above
    // feeds the syscalls/round gate at the spec'd transfer rate.
    rows.push_back({"unix batched", kHeavyLanes, unix_pair(kHeavyLanes, true)});
    rows.push_back(
        {"unix unbatched", kHeavyLanes, unix_pair(kHeavyLanes, false)});
    // Session-overhead gate: the same fault-free batched volley with the
    // reconnect/replay layer on (DistOptions default) and off, measured
    // back to back so both see identical warm state — sequencing + ring
    // retention is exactly the delta.
    session_gate_on = unix_pair(kLanes, true);
    session_off = unix_pair(kLanes, true, [](DistOptions& o) {
      o.reconnect_max_attempts = 0;
    });
    rows.push_back({"unix session", kLanes, session_gate_on});
    rows.push_back({"unix no-session", kLanes, session_off});
    std::filesystem::remove_all(dir);
  }
  rows.push_back({"tcp", kLanes, best_of(3, [&] {
                    return run_pair(kLanes, kPairRounds, true, [](int node) {
                      auto mesh = estelle::StreamSocketTransport::tcp_mesh(
                          node, 2, 47901);
                      return mesh.ok() ? std::shared_ptr<MailboxTransport>(
                                             std::move(mesh.value()))
                                       : nullptr;
                    });
                  })});

  // ---- node-parallel: in-node WorkerPool vs the sequential per-node loop --
  // Appended AFTER the positional rows the batching/session gates index.
  const unsigned hw = std::thread::hardware_concurrency();
  const Measurement par_seq = best_of(
      3, [&] { return run_par_pair(kParLanes, kParRounds, 1); });
  const Measurement par_wide = best_of(
      3, [&] { return run_par_pair(kParLanes, kParRounds, 4); });
  rows.push_back({"par workers=1", kParLanes, par_seq});
  rows.push_back({"par workers=4", kParLanes, par_wide});

  std::string json_rows;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%16s %6d %10.2f %12.0f %12.0f %14.0f %12.2f\n", row.name,
                row.lanes, row.m.wall_ms, row.m.rounds_per_sec,
                row.m.frames_per_sec, row.m.bytes_per_sec,
                row.m.syscalls_per_round);
    json_rows += "    {\"transport\": \"" + std::string(row.name) +
                 "\", \"lanes\": " + std::to_string(row.lanes) +
                 ", \"wall_ms\": " + num(row.m.wall_ms) +
                 ", \"rounds_per_sec\": " + num(row.m.rounds_per_sec) +
                 ", \"frames_per_sec\": " + num(row.m.frames_per_sec) +
                 ", \"bytes_per_sec\": " + num(row.m.bytes_per_sec) +
                 ", \"syscalls_per_round\": " + num(row.m.syscalls_per_round) +
                 ", \"frames_batched\": " +
                 std::to_string(row.m.frames_batched) +
                 ", \"fired\": " + std::to_string(row.m.fired) + "}";
    json_rows += i + 1 < rows.size() ? ",\n" : "\n";
  }

  // ---- gates: what batching buys, and what the hot path costs -------------
  const Measurement& unix_batched = rows[1].m;
  const Measurement& unix_unbatched = rows[2].m;
  const Measurement& heavy_batched = rows[3].m;
  const Measurement& heavy_unbatched = rows[4].m;
  const double speedup = heavy_unbatched.rounds_per_sec > 0
                             ? heavy_batched.rounds_per_sec /
                                   heavy_unbatched.rounds_per_sec
                             : 0;
  const double syscall_cut = unix_batched.syscalls_per_round > 0
                                 ? unix_unbatched.syscalls_per_round /
                                       unix_batched.syscalls_per_round
                                 : 0;
  const bool meets_speedup = speedup >= 2.0;
  const bool meets_syscalls = syscall_cut >= 4.0;
  // Session overhead: the reconnect/replay layer (per-frame sequencing, ring
  // retention, ack pruning) on a fault-free volley must stay within 10% of
  // the session-off rounds/sec — and a fault-free run must never reconnect
  // or replay anything.
  const Measurement& session_on = session_gate_on;
  const double session_ratio = session_off.rounds_per_sec > 0
                                   ? session_on.rounds_per_sec /
                                         session_off.rounds_per_sec
                                   : 0;
  const bool meets_session = session_ratio >= 0.9 &&
                             session_on.reconnects == 0 &&
                             session_on.frames_replayed == 0;

  const SendAllocProbe probe = probe_send_allocations();
  const bool meets_send_alloc = probe.ok && probe.allocs == 0;

  // Node-parallel gates. The scaling ratio only means something when the
  // host can actually run two shard continuations at once: on a single
  // hardware thread, four workers time-slice one core and the comparison
  // measures contention, not dispatch — self-skip, like the PR 3 precedent.
  const double par_ratio = par_seq.rounds_per_sec > 0
                               ? par_wide.rounds_per_sec /
                                     par_seq.rounds_per_sec
                               : 0;
  const bool par_gate_skipped = hw <= 1;
  const bool meets_par_ratio =
      par_gate_skipped || (par_ratio >= 0.9 && par_wide.parallel_rounds > 0);
  const ParAllocProbe par_alloc =
      probe_parallel_allocations(kParLanes, kParRounds);
  const bool meets_par_alloc = par_alloc.ok &&
                               par_alloc.steady_alloc_rounds == 0 &&
                               par_alloc.parallel_rounds > 0;

  std::printf(
      "\nacceptance @ N=%d: 1-node distributed %s >= 0.9x free-running "
      "rounds/sec (%.2fx); steady-state rounds %s zero-alloc\n",
      kEntities, meets_ratio ? "meets" : "MISSES", ratio,
      meets_alloc ? "meet" : "MISS");
  std::printf(
      "acceptance over unix sockets: batching %s >= 2x rounds/sec at %d "
      "transfers/round/peer (%.2fx); syscalls/round %s >= 4x reduced at %d "
      "transfers/round/peer (%.1fx, %.2f -> %.2f)\n",
      meets_speedup ? "meets" : "MISSES", kHeavyLanes, speedup,
      meets_syscalls ? "meets" : "MISSES", kLanes, syscall_cut,
      unix_unbatched.syscalls_per_round, unix_batched.syscalls_per_round);
  std::printf(
      "acceptance: warmed 16-entry batch send()+flush() %s zero-alloc "
      "(%llu allocations / %llu sends)\n",
      meets_send_alloc ? "meets" : "MISSES", probe.allocs, probe.iterations);
  std::printf(
      "acceptance: session layer %s >= 0.9x no-session rounds/sec on the "
      "fault-free volley (%.2fx; reconnects=%llu replayed=%llu)\n",
      meets_session ? "meets" : "MISSES", session_ratio, session_on.reconnects,
      session_on.frames_replayed);
  if (par_gate_skipped)
    std::printf(
        "acceptance: node-parallel scaling gate SKIPPED "
        "(hardware_concurrency=%u; four workers on one core measure "
        "contention, not dispatch)\n",
        hw);
  else
    std::printf(
        "acceptance: node-parallel workers=4 %s >= 0.9x workers=1 rounds/sec "
        "(%.2fx at %d shards/node, hw=%u, %llu parallel rounds)\n",
        meets_par_ratio ? "meets" : "MISSES", par_ratio, kParLanes, hw,
        par_wide.parallel_rounds);
  std::printf(
      "acceptance: warmed single-node parallel run %s zero-alloc "
      "(%llu alloc rounds / %llu parallel rounds at width %llu)\n",
      meets_par_alloc ? "meets" : "MISSES", par_alloc.steady_alloc_rounds,
      par_alloc.parallel_rounds, par_alloc.node_workers);

  const char* json_path = argc > 1 ? argv[1] : "bench_transport.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(
        f,
        "{\n  \"benchmark\": \"bench_transport\",\n"
        "  \"single_node\": {\"entities\": %d, \"active\": %d, "
        "\"rounds\": %llu,\n"
        "    \"free_running_rounds_per_sec\": %s,\n"
        "    \"distributed_rounds_per_sec\": %s,\n"
        "    \"ratio\": %s, \"steady_alloc_rounds\": %llu},\n"
        "  \"pair\": [\n%s  ],\n"
        "  \"batching\": {\"speedup\": %s, \"syscall_reduction\": %s,\n"
        "    \"send_allocs\": %llu, \"send_iterations\": %llu},\n"
        "  \"session\": {\"ratio\": %s, \"rounds_per_sec_on\": %s,\n"
        "    \"rounds_per_sec_off\": %s, \"reconnects\": %llu, "
        "\"frames_replayed\": %llu},\n"
        "  \"node_parallel\": {\"hardware_concurrency\": %u, "
        "\"shards_per_node\": %d,\n"
        "    \"workers_1_rounds_per_sec\": %s, "
        "\"workers_4_rounds_per_sec\": %s, \"ratio\": %s,\n"
        "    \"parallel_rounds\": %llu, \"steady_alloc_rounds\": %llu, "
        "\"scaling_gate_skipped\": %s},\n"
        "  \"acceptance\": {\"loopback_at_least_0_9x\": %s, "
        "\"steady_state_zero_alloc\": %s,\n"
        "    \"batched_at_least_2x\": %s, "
        "\"syscalls_reduced_at_least_4x\": %s, "
        "\"send_path_zero_alloc\": %s, "
        "\"session_overhead_within_10pct\": %s,\n"
        "    \"node_parallel_at_least_0_9x\": %s, "
        "\"node_parallel_zero_alloc\": %s}\n}\n",
        kEntities, kActive, static_cast<unsigned long long>(kSingleRounds),
        num(direct.rounds_per_sec).c_str(), num(neutral.rounds_per_sec).c_str(),
        num(ratio).c_str(),
        static_cast<unsigned long long>(neutral.steady_alloc_rounds),
        json_rows.c_str(), num(speedup).c_str(), num(syscall_cut).c_str(),
        probe.allocs, probe.iterations, num(session_ratio).c_str(),
        num(session_on.rounds_per_sec).c_str(),
        num(session_off.rounds_per_sec).c_str(), session_on.reconnects,
        session_on.frames_replayed, hw, kParLanes,
        num(par_seq.rounds_per_sec).c_str(),
        num(par_wide.rounds_per_sec).c_str(), num(par_ratio).c_str(),
        par_wide.parallel_rounds, par_alloc.steady_alloc_rounds,
        par_gate_skipped ? "true" : "false", meets_ratio ? "true" : "false",
        meets_alloc ? "true" : "false", meets_speedup ? "true" : "false",
        meets_syscalls ? "true" : "false", meets_send_alloc ? "true" : "false",
        meets_session ? "true" : "false", meets_par_ratio ? "true" : "false",
        meets_par_alloc ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }
  return meets_ratio && meets_alloc && meets_speedup && meets_syscalls &&
                 meets_send_alloc && meets_session && meets_par_ratio &&
                 meets_par_alloc
             ? 0
             : 1;
}
