// Sharded-executor scaling on the Fig. 2 multi-client configuration.
//
// Fig. 2 of the paper shows client workstations holding control connections
// and, on the multiprocessor, one independent MCAM server entity per
// connection: "all these server entities can run simultaneously on a
// multiprocessor system". Here each server entity is what §4.1 makes it —
// an Estelle system module of its own — so ConflictAnalysis gives every
// entity (and every client workstation) a shard, and ExecutorKind::Sharded
// runs them in parallel with per-shard virtual clocks.
//
// Part A: the exact Fig. 2 shape (client 1 with two connections, client 2
// with one) — conflict analysis, per-shard stats, and the virtual-time AND
// wall-clock speedup of the sharded runtime over the sequential baseline.
// The acceptance lines: >= 2x virtual at 4 workers, and wall speedup > 1
// at 4 workers now that the persistent WorkerPool removed the per-epoch
// thread-spawn cost that used to dominate small rounds.
//
// Part B: the scaled multi-client sweep (8 clients x 2 connections), worker
// counts 1..8. Virtual completion time is worker-independent (it models the
// shards' parallel clocks); the sweep shows wall-clock behaviour and the
// work-stealing counters.
//
// The whole result set is also emitted as JSON (argv[1], default
// bench_sharded_scaling.json) so CI can archive it and future changes can
// diff the wall-clock trajectory instead of eyeballing stdout.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ps_workload.hpp"
#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/shard_executor.hpp"
#include "osi/presentation.hpp"
#include "osi/session.hpp"
#include "osi/transport.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::Module;

namespace {

struct Fig2World {
  std::unique_ptr<estelle::Specification> spec;
  std::vector<bench::Responder*> responders;
  int requests = 0;

  [[nodiscard]] bool done() const {
    for (const bench::Responder* r : responders)
      if (r->received() < requests) return false;
    return true;
  }
};

/// `conns_per_client[i]` control connections for client i+1; one server
/// entity (its own systemprocess module) per connection, as in Fig. 2.
Fig2World build_fig2(const std::vector<int>& conns_per_client, int requests) {
  Fig2World w;
  w.requests = requests;
  w.spec = std::make_unique<estelle::Specification>("fig2-sharded");

  int conn_no = 0;
  for (std::size_t c = 0; c < conns_per_client.size(); ++c) {
    auto& client_sys = w.spec->root().create_child<Module>(
        "client" + std::to_string(c + 1), Attribute::SystemProcess);
    client_sys.set_uniprocessor_host(true);  // §3: client workstations
    for (int k = 0; k < conns_per_client[c]; ++k) {
      const std::string tag = std::to_string(++conn_no);
      auto& entity = w.spec->root().create_child<Module>(
          "entity" + tag + "@ksr1", Attribute::SystemProcess);

      auto& initiator = client_sys.create_child<bench::Initiator>(
          "init" + tag, requests, /*payload_bytes=*/16, SimTime::from_us(20));
      auto& cpres = client_sys.create_child<osi::PresentationModule>(
          "pres" + tag, osi::PresentationModule::Config{});
      auto& csess = client_sys.create_child<osi::SessionModule>(
          "sess" + tag, osi::SessionModule::Config{});
      auto& ctp = client_sys.create_child<osi::TransportModule>(
          "tp" + tag, osi::TransportModule::Config{});
      estelle::connect(initiator.ip("svc"), cpres.upper());
      estelle::connect(cpres.lower(), csess.upper());
      estelle::connect(csess.lower(), ctp.upper());

      auto& responder = entity.create_child<bench::Responder>(
          "resp" + tag, SimTime::from_us(20));
      auto& spres = entity.create_child<osi::PresentationModule>(
          "pres" + tag, osi::PresentationModule::Config{});
      auto& ssess = entity.create_child<osi::SessionModule>(
          "sess" + tag, osi::SessionModule::Config{});
      auto& stp = entity.create_child<osi::TransportModule>(
          "tp" + tag, osi::TransportModule::Config{});
      estelle::connect(responder.ip("svc"), spres.upper());
      estelle::connect(spres.lower(), ssess.upper());
      estelle::connect(ssess.lower(), stp.upper());

      estelle::connect(ctp.net(), stp.net());  // the Fig. 2 transport pipe
      w.responders.push_back(&responder);
    }
  }
  w.spec->initialize();
  return w;
}

struct Outcome {
  SimTime virtual_time{};
  double wall_ms = 0;
  estelle::RunReport report;
};

Outcome run_world(const std::vector<int>& conns, int requests,
                  const estelle::ExecutorConfig& runtime) {
  Fig2World w = build_fig2(conns, requests);
  auto executor = estelle::make_executor(*w.spec, runtime);
  const auto start = std::chrono::steady_clock::now();
  Outcome out;
  out.report = executor->run_until([&] { return w.done(); });
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.virtual_time = executor->now();
  return out;
}

/// Wall-clock noise control: run `reps` times, keep the best wall time
/// (virtual time and counters are deterministic, so any rep's report works).
Outcome run_world_best(const std::vector<int>& conns, int requests,
                       const estelle::ExecutorConfig& runtime, int reps = 3) {
  Outcome best = run_world(conns, requests, runtime);
  for (int r = 1; r < reps; ++r) {
    Outcome o = run_world(conns, requests, runtime);
    if (o.wall_ms < best.wall_ms) best = std::move(o);
  }
  return best;
}

unsigned long long total_steals(const Outcome& o) {
  unsigned long long steals = 0;
  for (const estelle::ShardRunStats& s : o.report.shards) steals += s.steals;
  return steals;
}

/// One configuration's row in the JSON artifact.
struct JsonRow {
  int workers = 0;
  Outcome outcome;
  double speedup_virtual = 0;
  double speedup_wall = 0;
};

std::string json_escapeless_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string section_json(const Outcome& seq, const std::vector<JsonRow>& rows) {
  std::string out = "{\n    \"sequential\": {\"virtual_ms\": " +
                    json_escapeless_number(seq.virtual_time.millis()) +
                    ", \"wall_ms\": " + json_escapeless_number(seq.wall_ms) +
                    "},\n    \"sharded\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out += "      {\"workers\": " + std::to_string(r.workers) +
           ", \"virtual_ms\": " +
           json_escapeless_number(r.outcome.virtual_time.millis()) +
           ", \"wall_ms\": " + json_escapeless_number(r.outcome.wall_ms) +
           ", \"speedup_virtual\": " +
           json_escapeless_number(r.speedup_virtual) +
           ", \"speedup_wall\": " + json_escapeless_number(r.speedup_wall) +
           ", \"steals\": " + std::to_string(total_steals(r.outcome)) + "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "    ]\n  }";
  return out;
}

std::vector<JsonRow> run_sweep(const std::vector<int>& conns, int requests,
                               const Outcome& seq,
                               const std::vector<int>& worker_counts) {
  std::vector<JsonRow> rows;
  for (int workers : worker_counts) {
    JsonRow row;
    row.workers = workers;
    row.outcome = run_world_best(
        conns, requests,
        {.kind = estelle::ExecutorKind::Sharded, .threads = workers});
    row.speedup_virtual = static_cast<double>(seq.virtual_time.ns) /
                          static_cast<double>(row.outcome.virtual_time.ns);
    row.speedup_wall = seq.wall_ms / row.outcome.wall_ms;
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table(const Outcome& seq, const std::vector<JsonRow>& rows) {
  std::printf("%14s %14s %9s %12s %9s %8s\n", "runtime", "virtual time",
              "speedup", "wall", "speedup", "steals");
  std::printf("%14s %11.3f ms %9s %9.2f ms %9s %8s\n", "sequential",
              seq.virtual_time.millis(), "1.00x", seq.wall_ms, "1.00x", "-");
  for (const JsonRow& r : rows)
    std::printf("%10d wkr %11.3f ms %8.2fx %9.2f ms %8.2fx %8llu\n",
                r.workers, r.outcome.virtual_time.millis(), r.speedup_virtual,
                r.outcome.wall_ms, r.speedup_wall, total_steals(r.outcome));
}

std::string part_a() {
  const std::vector<int> kFig2Conns = {2, 1};
  const int kRequests = 200;

  std::printf("== part A: the Fig. 2 configuration, sharded ==\n\n");
  {
    Fig2World w = build_fig2(kFig2Conns, kRequests);
    estelle::ConflictAnalysis analysis(*w.spec);
    std::printf("%s\n", analysis.to_string().c_str());
  }

  const Outcome seq = run_world_best(kFig2Conns, kRequests, {});
  const std::vector<JsonRow> rows = run_sweep(kFig2Conns, kRequests, seq,
                                              {1, 2, 4});
  print_table(seq, rows);

  const JsonRow& at4 = rows.back();
  std::printf("\nper-shard stats at 4 workers:\n");
  std::printf("  %-28s %8s %8s %8s %12s\n", "shard (system module)", "fired",
              "rounds", "steals", "clock");
  for (const estelle::ShardRunStats& s : at4.outcome.report.shards)
    std::printf("  %-28s %8llu %8llu %8llu %9.3f ms\n",
                s.system_module.c_str(),
                static_cast<unsigned long long>(s.fired),
                static_cast<unsigned long long>(s.rounds),
                static_cast<unsigned long long>(s.steals), s.clock.millis());

  std::printf(
      "\nacceptance: sharded @ 4 workers is %.2fx virtual (%s 2x target), "
      "%.2fx wall (%s >1x target)\n(wall numbers are hardware-dependent: "
      "this host reports %u cores)\n\n",
      at4.speedup_virtual, at4.speedup_virtual >= 2.0 ? "meets" : "MISSES",
      at4.speedup_wall, at4.speedup_wall > 1.0 ? "meets" : "MISSES",
      std::thread::hardware_concurrency());
  return section_json(seq, rows);
}

std::string part_b() {
  std::printf(
      "== part B: multi-client sweep (8 clients x 2 connections, 24 "
      "shards) ==\n\n");
  const std::vector<int> conns(8, 2);
  const int kRequests = 200;

  const Outcome seq = run_world_best(conns, kRequests, {});
  const std::vector<JsonRow> rows = run_sweep(conns, kRequests, seq,
                                              {1, 2, 4, 8});
  print_table(seq, rows);
  std::printf(
      "\npaper reference: server entities run simultaneously on the KSR1;\n"
      "virtual completion time models the shards' parallel clocks (worker-\n"
      "independent); client workstations (uniprocessor shards) bound it.\n");
  return section_json(seq, rows);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string fig2 = part_a();
  const std::string sweep = part_b();

  const char* json_path =
      argc > 1 ? argv[1] : "bench_sharded_scaling.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"bench_sharded_scaling\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"requests\": 200,\n"
                 "  \"fig2\": %s,\n"
                 "  \"sweep\": %s\n}\n",
                 std::thread::hardware_concurrency(), fig2.c_str(),
                 sweep.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }
  return 0;
}
