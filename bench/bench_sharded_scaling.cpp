// Sharded-executor scaling on the Fig. 2 multi-client configuration.
//
// Fig. 2 of the paper shows client workstations holding control connections
// and, on the multiprocessor, one independent MCAM server entity per
// connection: "all these server entities can run simultaneously on a
// multiprocessor system". Here each server entity is what §4.1 makes it —
// an Estelle system module of its own — so ConflictAnalysis gives every
// entity (and every client workstation) a shard, and ExecutorKind::Sharded
// runs them in parallel with per-shard virtual clocks.
//
// Part A: the exact Fig. 2 shape (client 1 with two connections, client 2
// with one) — conflict analysis, per-shard stats, and the virtual-time
// speedup of the sharded runtime over the sequential baseline. The
// acceptance line: >= 2x at 4 workers.
//
// Part B: the scaled multi-client sweep (8 clients x 2 connections), worker
// counts 1..8. Virtual completion time is worker-independent (it models the
// shards' parallel clocks); the sweep shows wall-clock behaviour and the
// work-stealing counters.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ps_workload.hpp"
#include "estelle/conflict.hpp"
#include "estelle/executor.hpp"
#include "estelle/shard_executor.hpp"
#include "osi/presentation.hpp"
#include "osi/session.hpp"
#include "osi/transport.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::Module;

namespace {

struct Fig2World {
  std::unique_ptr<estelle::Specification> spec;
  std::vector<bench::Responder*> responders;
  int requests = 0;

  [[nodiscard]] bool done() const {
    for (const bench::Responder* r : responders)
      if (r->received() < requests) return false;
    return true;
  }
};

/// `conns_per_client[i]` control connections for client i+1; one server
/// entity (its own systemprocess module) per connection, as in Fig. 2.
Fig2World build_fig2(const std::vector<int>& conns_per_client, int requests) {
  Fig2World w;
  w.requests = requests;
  w.spec = std::make_unique<estelle::Specification>("fig2-sharded");

  int conn_no = 0;
  for (std::size_t c = 0; c < conns_per_client.size(); ++c) {
    auto& client_sys = w.spec->root().create_child<Module>(
        "client" + std::to_string(c + 1), Attribute::SystemProcess);
    client_sys.set_uniprocessor_host(true);  // §3: client workstations
    for (int k = 0; k < conns_per_client[c]; ++k) {
      const std::string tag = std::to_string(++conn_no);
      auto& entity = w.spec->root().create_child<Module>(
          "entity" + tag + "@ksr1", Attribute::SystemProcess);

      auto& initiator = client_sys.create_child<bench::Initiator>(
          "init" + tag, requests, /*payload_bytes=*/16, SimTime::from_us(20));
      auto& cpres = client_sys.create_child<osi::PresentationModule>(
          "pres" + tag, osi::PresentationModule::Config{});
      auto& csess = client_sys.create_child<osi::SessionModule>(
          "sess" + tag, osi::SessionModule::Config{});
      auto& ctp = client_sys.create_child<osi::TransportModule>(
          "tp" + tag, osi::TransportModule::Config{});
      estelle::connect(initiator.ip("svc"), cpres.upper());
      estelle::connect(cpres.lower(), csess.upper());
      estelle::connect(csess.lower(), ctp.upper());

      auto& responder = entity.create_child<bench::Responder>(
          "resp" + tag, SimTime::from_us(20));
      auto& spres = entity.create_child<osi::PresentationModule>(
          "pres" + tag, osi::PresentationModule::Config{});
      auto& ssess = entity.create_child<osi::SessionModule>(
          "sess" + tag, osi::SessionModule::Config{});
      auto& stp = entity.create_child<osi::TransportModule>(
          "tp" + tag, osi::TransportModule::Config{});
      estelle::connect(responder.ip("svc"), spres.upper());
      estelle::connect(spres.lower(), ssess.upper());
      estelle::connect(ssess.lower(), stp.upper());

      estelle::connect(ctp.net(), stp.net());  // the Fig. 2 transport pipe
      w.responders.push_back(&responder);
    }
  }
  w.spec->initialize();
  return w;
}

struct Outcome {
  SimTime virtual_time{};
  double wall_ms = 0;
  estelle::RunReport report;
};

Outcome run_world(const std::vector<int>& conns, int requests,
                  const estelle::ExecutorConfig& runtime) {
  Fig2World w = build_fig2(conns, requests);
  auto executor = estelle::make_executor(*w.spec, runtime);
  const auto start = std::chrono::steady_clock::now();
  Outcome out;
  out.report = executor->run_until([&] { return w.done(); });
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.virtual_time = executor->now();
  return out;
}

void part_a() {
  const std::vector<int> kFig2Conns = {2, 1};
  const int kRequests = 200;

  std::printf("== part A: the Fig. 2 configuration, sharded ==\n\n");
  {
    Fig2World w = build_fig2(kFig2Conns, kRequests);
    estelle::ConflictAnalysis analysis(*w.spec);
    std::printf("%s\n", analysis.to_string().c_str());
  }

  const Outcome seq = run_world(kFig2Conns, kRequests, {});
  std::printf("%14s %14s %9s\n", "runtime", "virtual time", "speedup");
  std::printf("%14s %11.3f ms %9s\n", "sequential", seq.virtual_time.millis(),
              "1.00x");
  double speedup_at_4 = 0;
  for (int workers : {1, 2, 4}) {
    const Outcome shd = run_world(
        kFig2Conns, kRequests,
        {.kind = estelle::ExecutorKind::Sharded, .threads = workers});
    const double speedup = static_cast<double>(seq.virtual_time.ns) /
                           static_cast<double>(shd.virtual_time.ns);
    if (workers == 4) speedup_at_4 = speedup;
    std::printf("%10d wkr %11.3f ms %8.2fx\n", workers,
                shd.virtual_time.millis(), speedup);
    if (workers == 4) {
      std::printf("\nper-shard stats at 4 workers:\n");
      std::printf("  %-28s %8s %8s %8s %12s\n", "shard (system module)",
                  "fired", "rounds", "steals", "clock");
      for (const estelle::ShardRunStats& s : shd.report.shards)
        std::printf("  %-28s %8llu %8llu %8llu %9.3f ms\n",
                    s.system_module.c_str(),
                    static_cast<unsigned long long>(s.fired),
                    static_cast<unsigned long long>(s.rounds),
                    static_cast<unsigned long long>(s.steals),
                    s.clock.millis());
    }
  }
  std::printf(
      "\nacceptance: sharded @ 4 workers is %.2fx over sequential (%s 2x "
      "target)\n\n",
      speedup_at_4, speedup_at_4 >= 2.0 ? "meets" : "MISSES");
}

void part_b() {
  std::printf(
      "== part B: multi-client sweep (8 clients x 2 connections, 24 "
      "shards) ==\n\n");
  const std::vector<int> conns(8, 2);
  const int kRequests = 200;

  const Outcome seq = run_world(conns, kRequests, {});
  std::printf("%14s %14s %9s %12s %8s\n", "runtime", "virtual time",
              "speedup", "wall", "steals");
  std::printf("%14s %11.3f ms %9s %9.2f ms %8s\n", "sequential",
              seq.virtual_time.millis(), "1.00x", seq.wall_ms, "-");
  for (int workers : {1, 2, 4, 8}) {
    const Outcome shd = run_world(
        conns, kRequests,
        {.kind = estelle::ExecutorKind::Sharded, .threads = workers});
    unsigned long long steals = 0;
    for (const estelle::ShardRunStats& s : shd.report.shards)
      steals += s.steals;
    std::printf("%10d wkr %11.3f ms %8.2fx %9.2f ms %8llu\n", workers,
                shd.virtual_time.millis(),
                static_cast<double>(seq.virtual_time.ns) /
                    static_cast<double>(shd.virtual_time.ns),
                shd.wall_ms, steals);
  }
  std::printf(
      "\npaper reference: server entities run simultaneously on the KSR1;\n"
      "virtual completion time models the shards' parallel clocks (worker-\n"
      "independent); client workstations (uniprocessor shards) bound it.\n");
}

}  // namespace

int main() {
  part_a();
  part_b();
  return 0;
}
