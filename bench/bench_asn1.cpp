// Footnote 3 of §5.1 / [12] — parallel ASN.1 encoding does not pay.
//
// "One might expect performance gains for parallel encoding/decoding. In
// [12], we show that by parallelization in this area, we do not obtain
// better performance."
//
// Two reproductions:
//   * google-benchmark real time: sequential encode vs thread-pool parallel
//     encode of (a) a typical small MCAM PDU and (b) a large synthetic
//     SEQUENCE — dispatch/join swamps the former;
//   * the deterministic cost model (printed at exit) showing where the
//     crossover would sit on 1990s-era cost ratios.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "asn1/ber.hpp"
#include "asn1/parallel.hpp"
#include "mcam/pdus.hpp"

using namespace mcam;
using asn1::Value;

namespace {

Value small_pdu_value() {
  // Shape of a typical MCAM response: a handful of small fields.
  return Value::sequence({
      Value::enumerated(0),
      Value::integer(42),
      Value::sequence({
          Value::sequence({Value::ia5string("title"),
                           Value::ia5string("casablanca")}),
          Value::sequence({Value::ia5string("fps"), Value::ia5string("25")}),
      }),
  });
}

Value large_value(std::size_t children, std::size_t bytes_each) {
  std::vector<Value> kids;
  kids.reserve(children);
  for (std::size_t i = 0; i < children; ++i)
    kids.push_back(Value::octet_string(common::Bytes(bytes_each, 0x3c)));
  return Value::sequence(std::move(kids));
}

void BM_EncodeSmallSequential(benchmark::State& state) {
  const Value v = small_pdu_value();
  for (auto _ : state) benchmark::DoNotOptimize(asn1::encode(v));
}

void BM_EncodeSmallParallel(benchmark::State& state) {
  const Value v = small_pdu_value();
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(asn1::encode_parallel(v, workers));
}

void BM_EncodeLargeSequential(benchmark::State& state) {
  const Value v = large_value(64, 65536);
  for (auto _ : state) benchmark::DoNotOptimize(asn1::encode(v));
}

void BM_EncodeLargeParallel(benchmark::State& state) {
  const Value v = large_value(64, 65536);
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(asn1::encode_parallel(v, workers));
}

void print_model_table() {
  std::printf(
      "\n[12] cost-model reproduction (1990s magnitudes: 50ns/byte "
      "marshalling,\n2us dispatch, 5us join per worker):\n\n");
  std::printf("%24s %12s %12s %12s %12s\n", "value", "seq", "2 workers",
              "4 workers", "8 workers");
  struct Row {
    const char* name;
    Value value;
  };
  const Row rows[] = {
      {"small MCAM PDU", small_pdu_value()},
      {"64 x 1 KiB SEQUENCE", large_value(64, 1024)},
      {"64 x 64 KiB SEQUENCE", large_value(64, 65536)},
  };
  const asn1::ParallelEncodeModel model;
  for (const Row& row : rows) {
    std::printf("%24s", row.name);
    const auto seq = model.encode_time(row.value, 1);
    std::printf(" %12s", common::format_duration(seq).c_str());
    for (int workers : {2, 4, 8}) {
      const auto t = model.encode_time(row.value, workers);
      std::printf(" %9s %s", common::format_duration(t).c_str(),
                  t.ns >= seq.ns ? "-" : "+");
    }
    std::printf("\n");
  }
  std::printf(
      "\n('-' = parallel slower; '+' = faster). Control PDUs are far below\n"
      "the crossover: parallel ASN.1 encoding does not pay — the [12] "
      "result.\n");
}

}  // namespace

BENCHMARK(BM_EncodeSmallSequential);
BENCHMARK(BM_EncodeSmallParallel)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_EncodeLargeSequential);
BENCHMARK(BM_EncodeLargeParallel)->Arg(2)->Arg(4)->Arg(8);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  print_model_table();
  return 0;
}
