// Sparse-activity hot-path bench: event-driven dirty-set scheduling vs the
// legacy full-tree scan (ExecutorConfig::full_scan).
//
// The workload models a real protocol stack's steady state: N protocol
// entities exist, K ≪ N are active. Idle entities are consumers parked on
// channels whose writer never fires (wired, guarded, head-checked — exactly
// what a full scan pays for every round); the active ones are ping-pong
// pairs exchanging a token every round, so every round fires K transitions
// forever. Sweeping N at fixed K shows the point of the PR:
//
//   * full scan — guards examined per firing grows linearly with N;
//   * dirty set — it stays flat (only the modules something happened to are
//     examined), rounds/sec stops degrading with idle population, and a
//     steady-state round performs zero heap allocations
//     (RunReport::rounds_with_allocation, counter-verified here).
//
// Acceptance (ISSUE 4): at N=1024, K=8 the guards-examined-per-firing ratio
// full/dirty must be >= 10x, and the warmed second run must report zero
// allocating rounds.
//
// Emits bench_hot_path.json (argv[1] overrides the path) so CI can archive
// the trajectory, like bench_sharded_scaling.json.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "estelle/executor.hpp"
#include "estelle/module.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::ExecutorConfig;
using estelle::ExecutorKind;
using estelle::Interaction;
using estelle::Module;
using estelle::RunReport;
using estelle::StopCondition;

namespace {

/// N-K idle consumers + K active modules (K/2 ping-pong pairs), one system
/// module. Never quiesces; runs are bounded by a round budget.
struct SparseWorld {
  std::unique_ptr<estelle::Specification> spec;
  std::vector<Module*> pongs;

  SparseWorld(int entities, int active) {
    spec = std::make_unique<estelle::Specification>("hotpath");
    auto& sys =
        spec->root().create_child<Module>("pool", Attribute::SystemProcess);
    auto& mute = sys.create_child<Module>("mute", Attribute::Process);
    const int idle = entities - active;
    for (int i = 0; i < idle; ++i) {
      auto& m = sys.create_child<Module>("idle" + std::to_string(i),
                                         Attribute::Process);
      estelle::connect(mute.ip("o" + std::to_string(i)), m.ip("in"));
      m.trans("never").when(m.ip("in")).action(
          [](Module&, const Interaction*) {});
    }
    for (int p = 0; p < active / 2; ++p) {
      auto& a = sys.create_child<Module>("ping" + std::to_string(p),
                                         Attribute::Process);
      auto& b = sys.create_child<Module>("pong" + std::to_string(p),
                                         Attribute::Process);
      estelle::connect(a.ip("out"), b.ip("in"));
      estelle::connect(b.ip("out"), a.ip("in"));
      for (Module* m : {&a, &b}) {
        m->trans("hit")
            .when(m->ip("in"))
            .cost(SimTime::from_us(5))
            .action([m](Module&, const Interaction*) {
              m->ip("out").output(Interaction(1));
            });
      }
      pongs.push_back(&b);
    }
    spec->initialize();
    for (Module* b : pongs) b->ip("out").output(Interaction(1));
  }
};

struct Measurement {
  double wall_ms = 0;
  double rounds_per_sec = 0;
  double guards_per_firing = 0;
  unsigned long long fired = 0;
  unsigned long long steady_alloc_rounds = 0;  // second (warmed) run
};

Measurement run_once(int entities, int active, std::uint64_t rounds,
                     bool full_scan) {
  SparseWorld world(entities, active);
  ExecutorConfig cfg;
  cfg.full_scan = full_scan;
  auto executor = estelle::make_executor(*world.spec, cfg);
  // Warm-up run sizes every persistent buffer; the measured run is the
  // steady state the counters certify.
  executor->run({.stop = {StopCondition::max_steps(rounds / 10 + 1)}});

  const auto start = std::chrono::steady_clock::now();
  const RunReport r =
      executor->run({.stop = {StopCondition::max_steps(rounds)}});
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  Measurement m;
  m.wall_ms = wall_ms;
  m.rounds_per_sec =
      wall_ms > 0 ? static_cast<double>(r.steps) / (wall_ms / 1e3) : 0;
  m.fired = r.fired;
  m.guards_per_firing =
      r.fired > 0 ? static_cast<double>(r.guards_examined) /
                        static_cast<double>(r.fired)
                  : 0;
  m.steady_alloc_rounds = r.rounds_with_allocation;
  return m;
}

Measurement best_of(int entities, int active, std::uint64_t rounds,
                    bool full_scan, int reps = 3) {
  Measurement best = run_once(entities, active, rounds, full_scan);
  for (int i = 1; i < reps; ++i) {
    Measurement m = run_once(entities, active, rounds, full_scan);
    if (m.wall_ms < best.wall_ms) best = m;
  }
  return best;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kActive = 8;
  constexpr std::uint64_t kRounds = 2000;
  const std::vector<int> sweep = {64, 256, 1024, 4096};

  std::printf(
      "== sparse-activity hot path: K=%d active among N entities, %llu "
      "rounds ==\n\n",
      kActive, static_cast<unsigned long long>(kRounds));
  std::printf("%6s %14s %14s %10s | %14s %14s %10s | %9s %11s\n", "N",
              "full rnd/s", "dirty rnd/s", "speedup", "full g/fire",
              "dirty g/fire", "ratio", "alloc rds", "(steady)");

  std::string rows;
  bool meets_ratio = false;
  bool meets_alloc = false;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const int n = sweep[i];
    const Measurement full = best_of(n, kActive, kRounds, /*full_scan=*/true);
    const Measurement dirty =
        best_of(n, kActive, kRounds, /*full_scan=*/false);
    const double speedup =
        dirty.wall_ms > 0 ? full.wall_ms / dirty.wall_ms : 0;
    const double ratio = dirty.guards_per_firing > 0
                             ? full.guards_per_firing / dirty.guards_per_firing
                             : 0;
    std::printf(
        "%6d %14.0f %14.0f %9.2fx | %14.2f %14.2f %9.1fx | %9llu %11s\n", n,
        full.rounds_per_sec, dirty.rounds_per_sec, speedup,
        full.guards_per_firing, dirty.guards_per_firing, ratio,
        dirty.steady_alloc_rounds,
        dirty.steady_alloc_rounds == 0 ? "zero-alloc" : "ALLOCATES");
    if (n == 1024) {
      meets_ratio = ratio >= 10.0;
      meets_alloc = dirty.steady_alloc_rounds == 0;
    }
    rows += "    {\"entities\": " + std::to_string(n) +
            ", \"active\": " + std::to_string(kActive) +
            ", \"rounds\": " + std::to_string(kRounds) +
            ", \"full\": {\"wall_ms\": " + num(full.wall_ms) +
            ", \"rounds_per_sec\": " + num(full.rounds_per_sec) +
            ", \"guards_per_firing\": " + num(full.guards_per_firing) +
            "}, \"dirty\": {\"wall_ms\": " + num(dirty.wall_ms) +
            ", \"rounds_per_sec\": " + num(dirty.rounds_per_sec) +
            ", \"guards_per_firing\": " + num(dirty.guards_per_firing) +
            ", \"steady_alloc_rounds\": " +
            std::to_string(dirty.steady_alloc_rounds) +
            "}, \"speedup_wall\": " + num(speedup) +
            ", \"guards_ratio\": " + num(ratio) + "}";
    rows += i + 1 < sweep.size() ? ",\n" : "\n";
  }

  std::printf(
      "\nacceptance @ N=1024, K=8: guards-per-firing ratio %s 10x target; "
      "steady-state rounds %s zero-alloc target\n",
      meets_ratio ? "meets" : "MISSES", meets_alloc ? "meet" : "MISS");

  const char* json_path = argc > 1 ? argv[1] : "bench_hot_path.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"benchmark\": \"bench_hot_path\",\n"
                 "  \"active\": %d,\n  \"sweep\": [\n%s  ],\n"
                 "  \"acceptance\": {\"guards_ratio_10x\": %s, "
                 "\"steady_state_zero_alloc\": %s}\n}\n",
                 kActive, rows.c_str(), meets_ratio ? "true" : "false",
                 meets_alloc ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path);
    return 1;
  }
  return meets_ratio && meets_alloc ? 0 : 1;
}
