// §3 / §5 — Generated (Estelle) vs hand-written (ISODE) control stack.
//
// Paper: "With these two versions we can measure performance differences
// between generated and hand-written code." Both stacks carry the identical
// MCAM byte stream (same PPDU/SPDU codec work); the difference isolated
// here is the Estelle runtime — module scheduling, interaction queues,
// layer traversal — versus direct function calls.
//
// Real-time google-benchmark: one AttributeQuery round-trip per iteration
// over each stack, plus the raw codec cost for reference.
#include <benchmark/benchmark.h>

#include "mcam/testbed.hpp"

using namespace mcam;
using core::StackKind;
using core::Testbed;

namespace {

struct World {
  Testbed bed;
  core::McamClient client;
  std::uint64_t movie;

  explicit World(StackKind stack)
      : bed([&] {
          Testbed::Config cfg;
          cfg.stack = stack;
          return cfg;
        }()),
        client(bed.client(0)),
        movie(0) {
    directory::MovieEntry e;
    e.title = "bench-movie";
    e.duration_frames = 100;
    e.location_host = bed.config().server_host;
    movie = bed.server().directory().add(e).value();
    auto assoc = client.associate("bench");
    if (!assoc.ok()) std::abort();
  }
};

void BM_QueryRoundTrip(benchmark::State& state, StackKind stack) {
  World world(stack);
  std::uint64_t ok = 0;
  for (auto _ : state) {
    auto r = world.client.query_attributes(world.movie, {"title"});
    if (r.ok()) ++ok;
    benchmark::DoNotOptimize(r);
  }
  state.counters["exchanges/s"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
}

void BM_CodecOnly(benchmark::State& state) {
  // The shared work both stacks perform: encode request, decode request,
  // encode response, decode response.
  const core::Pdu request = core::AttrQueryReq{1, {"title"}};
  const core::Pdu response =
      core::AttrQueryResp{core::ResultCode::Success, {{"title", "x"}}};
  for (auto _ : state) {
    auto rq = core::encode(request);
    auto rq2 = core::decode(rq);
    auto rs = core::encode(response);
    auto rs2 = core::decode(rs);
    benchmark::DoNotOptimize(rq2);
    benchmark::DoNotOptimize(rs2);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_QueryRoundTrip, estelle_generated,
                  StackKind::EstelleGenerated);
BENCHMARK_CAPTURE(BM_QueryRoundTrip, isode_handcoded,
                  StackKind::IsodeHandCoded);
BENCHMARK(BM_CodecOnly);

BENCHMARK_MAIN();
