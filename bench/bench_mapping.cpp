// §5.2 — Influence of Mapping Alternatives (and [6]'s connection-vs-layer
// result cited in §3).
//
// Paper: thread-per-module "is not always the best alternative. Consider the
// situation in which the number of Estelle modules exceeds the number of
// processors. ... Our solution is to group certain Estelle modules into one
// unit, and run this unit by one thread. We take as many of these units as
// there are processors. ... First measurements with the new grouping scheme
// show further performance gains." And from [6]: "connection-per-processor
// will yield better performance than layer-per-processor."
//
// Fixed workload (8 connections spread over 2 client workstations), varying
// processor count, all four mapping policies. Expected shape: with few
// processors, thread-per-module suffers from context-switch losses and
// grouping wins; connection-per-processor beats layer-per-processor
// throughout (connections don't synchronize, layers do).
#include <cstdio>

#include "ps_workload.hpp"

using namespace mcam;
using namespace mcam::bench;
using estelle::Mapping;

int main() {
  PsConfig cfg;
  cfg.connections = 8;
  cfg.requests = 96;
  cfg.client_machines = 2;

  {
    PsWorkload probe = build_ps_workload(cfg);
    std::printf(
        "§5.2 mapping alternatives — 8 connections over 2 client "
        "workstations,\n%zu Estelle modules, 96 data requests each\n\n",
        probe.module_count());
  }

  const SimTime seq = run_sequential(cfg);
  std::printf("sequential baseline: %.3f ms\n\n", seq.millis());

  std::printf("%6s", "procs");
  const Mapping mappings[] = {Mapping::ThreadPerModule, Mapping::GroupedUnits,
                              Mapping::ConnectionPerProcessor,
                              Mapping::LayerPerProcessor};
  for (Mapping m : mappings) std::printf(" %26s", mapping_name(m));
  std::printf("\n");

  for (int procs : {2, 4, 8, 16, 32}) {
    std::printf("%6d", procs);
    for (Mapping m : mappings) {
      const SimTime t = run_parallel(cfg, procs, m);
      const double speedup =
          static_cast<double>(seq.ns) / static_cast<double>(t.ns);
      std::printf("      %10.3f ms (%4.2fx)", t.millis(), speedup);
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper reference: grouping into one unit per processor avoids the\n"
      "synchronization losses of thread-per-module when modules exceed\n"
      "processors; connection-per-processor beats layer-per-processor [6].\n");
  return 0;
}
