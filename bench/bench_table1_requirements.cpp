// Table 1 — "Different requirements of the protocol types".
//
// The paper's Table 1 contrasts the control protocol with the CM-stream
// protocol qualitatively. This bench *measures* each cell on the running
// system: MCAM over the generated control stack (with 10% induced transport
// loss) versus MTP over an impaired datagram network, and prints the
// measured table next to the paper's claims. A MetricsObserver rides along
// on the control executor (attached once with add_run_observer, aggregating
// across every run the client facade pumps) and reports which modules carried
// the control load and the firing-gap histogram.
#include <cstdio>

#include "estelle/metrics.hpp"
#include "mcam/testbed.hpp"

using namespace mcam;
using common::SimTime;
using core::Testbed;

namespace {

constexpr int kExchanges = 60;

struct ControlMeasurement {
  double data_rate_kbps = 0;
  double reliability = 0;     // responses received / requests sent
  std::uint64_t retransmissions = 0;
  double mean_rtt_ms = 0;
};

ControlMeasurement measure_control(estelle::MetricsObserver& metrics) {
  Testbed::Config cfg;
  cfg.control_loss = 0.10;
  Testbed bed(cfg);
  bed.executor().add_run_observer(&metrics);
  directory::MovieEntry e;
  e.title = "movie";
  e.duration_frames = 100;
  e.location_host = cfg.server_host;
  (void)bed.server().directory().add(e);

  core::McamClient client = bed.client(0);
  (void)client.associate("alice");

  ControlMeasurement m;
  std::uint64_t wire_bytes = 0;
  int ok = 0;
  const SimTime start = bed.executor().now();
  for (int i = 0; i < kExchanges; ++i) {
    const core::Pdu request = core::AttrQueryReq{1, {"title", "duration"}};
    wire_bytes += core::encode(request).size();
    auto resp = client.query_attributes(1, {"title", "duration"});
    if (resp.ok()) {
      ++ok;
      wire_bytes += core::encode(core::Pdu{resp.value()}).size();
    }
  }
  const SimTime elapsed = bed.executor().now() - start;
  m.data_rate_kbps =
      static_cast<double>(wire_bytes) * 8.0 / elapsed.seconds() / 1e3;
  m.reliability = static_cast<double>(ok) / kExchanges;
  m.mean_rtt_ms = elapsed.millis() / kExchanges;
  m.retransmissions =
      bed.connection(0).client_stack.transport->retransmissions() +
      bed.connection(0).server_stack.transport->retransmissions();
  return m;
}

struct StreamMeasurement {
  double data_rate_mbps = 0;
  double reliability = 0;  // packet delivery ratio
  double jitter_ms = 0;
  double mean_delay_ms = 0;
  std::uint64_t retransmissions = 0;  // MTP has none, by design
};

StreamMeasurement measure_stream() {
  net::Impairments link;
  link.latency = SimTime::from_ms(2);
  link.jitter = SimTime::from_ms(3);
  link.loss = 0.10;
  link.bandwidth_bps = 100e6;
  net::SimNetwork net(1994, link);
  mtp::StreamProviderAgent spa(net, "server");
  mtp::StreamUserAgent sua(net, {"client", 7000});

  mtp::FrameSource::Config fcfg;
  fcfg.total_frames = 250;       // 10 s of 25 fps video
  fcfg.mean_frame_bytes = 16000;  // ~3.2 Mbit/s
  const auto stream = spa.open_stream(mtp::FrameSource(fcfg), sua.address());

  SimTime t{};
  while (!spa.finished(stream) || net.next_event()) {
    t += SimTime::from_ms(5);
    spa.step(net.now());
    net.run_until(t);
    sua.poll(net.now());
  }

  const mtp::ReceiverStats& s = sua.stats();
  StreamMeasurement m;
  m.data_rate_mbps =
      static_cast<double>(s.bytes_received) * 8.0 / net.now().seconds() / 1e6;
  m.reliability = s.packet_delivery_ratio();
  m.jitter_ms = s.jitter_ms;
  m.mean_delay_ms = s.mean_delay_ms;
  m.retransmissions = 0;  // no ARQ anywhere in the MTP path
  return m;
}

}  // namespace

int main() {
  std::printf(
      "Table 1 — measured requirements of the two protocol types\n"
      "(both paths over links with 10%% loss; control also pays ARQ)\n\n");
  estelle::MetricsObserver metrics;
  const ControlMeasurement control = measure_control(metrics);
  const StreamMeasurement stream = measure_stream();

  std::printf("%-22s | %-28s | %-28s\n", "", "control (MCAM/P/S/TP)",
              "CM stream (MTP/UDP)");
  std::printf("%-22s | %-28s | %-28s\n", "----------------------",
              "----------------------------",
              "----------------------------");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f kbit/s (low)",
                control.data_rate_kbps);
  char buf2[64];
  std::snprintf(buf2, sizeof(buf2), "%.1f Mbit/s (high)",
                stream.data_rate_mbps);
  std::printf("%-22s | %-28s | %-28s\n", "data rate", buf, buf2);

  std::snprintf(buf, sizeof(buf), "%.0f%% (all %s)",
                100.0 * control.reliability,
                control.reliability >= 1.0 ? "delivered" : "!!");
  std::snprintf(buf2, sizeof(buf2), "%.1f%% (< 100%%)",
                100.0 * stream.reliability);
  std::printf("%-22s | %-28s | %-28s\n", "reliability", buf, buf2);

  std::snprintf(buf, sizeof(buf), "yes (%llu retransmissions)",
                static_cast<unsigned long long>(control.retransmissions));
  std::snprintf(buf2, sizeof(buf2), "lightweight/none (0 rexmit)");
  std::printf("%-22s | %-28s | %-28s\n", "error correction", buf, buf2);

  std::snprintf(buf, sizeof(buf), "asynchronous (on demand)");
  std::snprintf(buf2, sizeof(buf2), "isochronous (40 ms pacing)");
  std::printf("%-22s | %-28s | %-28s\n", "timing relations", buf, buf2);

  std::snprintf(buf, sizeof(buf), "no (rtt %.2f ms, unbounded)",
                control.mean_rtt_ms);
  std::snprintf(buf2, sizeof(buf2), "yes (jitter %.2f ms, playout)",
                stream.jitter_ms);
  std::printf("%-22s | %-28s | %-28s\n", "delay & jitter control", buf, buf2);

  std::printf("%-22s | %-28s | %-28s\n", "protocol stack", "OSI (P/S/TP)",
              "XMovie MTP / UDP");

  std::printf(
      "\npaper's Table 1 claims hold: low-rate 100%%-reliable asynchronous\n"
      "control vs high-rate lossy isochronous stream with jitter control.\n");

  std::printf("\ncontrol-path firing profile (MetricsObserver, cumulative "
              "across %d exchanges):\n%s",
              kExchanges, metrics.to_string(8).c_str());
  return 0;
}
