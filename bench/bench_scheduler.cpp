// §5.2 — Scheduler overhead: centralized vs decentralized.
//
// Paper: "For protocols with small processing time, the Estelle scheduler of
// many available compilers becomes the bottleneck for the speedup.
// Measurements show a runtime percentage of the scheduler of up to 80%. Our
// scheduler shows better runtime behavior, as it is decentralized. Each part
// only has to check the transition of one module. This can be done in
// parallel."
//
// We run the §5.1 workload with per-transition work swept from heavy to
// tiny, under (a) a centralized scheduler — selection bookkeeping serialized
// through one shared resource — and (b) the decentralized scheduler that
// pays the same bookkeeping on each unit in parallel. Reported: the
// scheduler's share of total runtime and the resulting completion times.
#include <cstdio>

#include "ps_workload.hpp"

using namespace mcam;
using namespace mcam::bench;

namespace {

struct Measurement {
  double share;
  SimTime time;
};

Measurement run_with(const PsConfig& cfg, bool centralized) {
  PsWorkload w = build_ps_workload(cfg);
  estelle::ExecutorConfig runtime;
  runtime.kind = estelle::ExecutorKind::ParallelSim;
  runtime.processors = 8;
  runtime.mapping = estelle::Mapping::ConnectionPerProcessor;
  runtime.costs.sched_per_item = common::SimTime::from_us(15);
  runtime.costs.centralized_scheduler = centralized;
  auto executor = estelle::make_executor(*w.spec, runtime);
  const estelle::SchedulerStats stats =
      executor->run_until([&] { return w.done(); }).stats;
  // Centralized: the scheduler is one serialized resource; its share of the
  // runtime is its busy fraction of the makespan (the "80%" metric).
  // Decentralized: bookkeeping happens on each unit in parallel; its share
  // is the fraction of total processor work spent scheduling.
  const double share =
      centralized
          ? static_cast<double>(stats.sched_time.ns) /
                static_cast<double>(stats.time.ns)
          : stats.scheduler_share();
  return {share, stats.time};
}

}  // namespace

int main() {
  std::printf(
      "§5.2 scheduler overhead — centralized vs decentralized Estelle "
      "scheduler\n(4 connections, 64 data requests, scheduler bookkeeping "
      "15us/transition)\n\n");
  std::printf("%15s | %10s %12s | %10s %12s | %8s\n", "work/transition",
              "central %", "time", "decentr %", "time", "speedup");

  for (long long work_us : {500, 200, 100, 50, 20, 5, 1}) {
    PsConfig cfg;
    cfg.connections = 4;
    cfg.requests = 64;
    cfg.client_machines = 2;
    cfg.endpoint_cost = common::SimTime::from_us(work_us);
    cfg.layer_cost = common::SimTime::from_us(work_us);
    // Scale the protocol-layer work too: rebuild with scaled module costs is
    // implicit — endpoint cost dominates the initiator/responder; the OSI
    // modules keep their own costs, so "work/transition" is the knob for the
    // endpoints and the trend is driven by the scheduler term.
    const Measurement central = run_with(cfg, true);
    const Measurement decentral = run_with(cfg, false);
    std::printf("%12lld us | %9.1f%% %9.3f ms | %9.1f%% %9.3f ms | %7.2fx\n",
                work_us, 100.0 * central.share, central.time.millis(),
                100.0 * decentral.share, decentral.time.millis(),
                static_cast<double>(central.time.ns) /
                    static_cast<double>(decentral.time.ns));
  }

  std::printf(
      "\npaper reference: the centralized scheduler consumes up to 80%% of\n"
      "the runtime as per-transition work shrinks; the decentralized\n"
      "scheduler checks one module per part, in parallel, and stays faster.\n");
  return 0;
}
