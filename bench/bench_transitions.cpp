// §5.2 — Transition dispatch: hard-coded if-chain vs state-indexed table.
//
// Paper: "Mainly, there are two alternatives: first, each transition may be
// hard-coded as a C++ code block in a transition selection function. ...
// Second, states and transitions may be mapped to a table. The current
// state will be used as an index ... As newer performance measurements
// show, the table-controlled approach is significantly better than the
// hard-coded one [11] when the number of transitions becomes larger than
// four."
//
// Real-time google-benchmark over Module::select_fireable with T
// transitions spread over T states (the module sits in the last state, the
// worst case for a linear chain). Compare LinearScan vs StateTable at each
// T and find the crossover.
#include <benchmark/benchmark.h>

#include "estelle/module.hpp"

using namespace mcam;
using estelle::Attribute;
using estelle::DispatchKind;
using estelle::Interaction;
using estelle::Module;

namespace {

/// A module with `transitions` spontaneous transitions, one per state.
struct FsmHolder {
  estelle::Specification spec{"dispatch"};
  Module* module;

  explicit FsmHolder(int transitions, DispatchKind kind) {
    auto& sys =
        spec.root().create_child<Module>("sys", Attribute::SystemProcess);
    module = &sys.create_child<Module>("fsm", Attribute::Process);
    for (int s = 0; s < transitions; ++s)
      module->trans("t" + std::to_string(s))
          .from(s)
          .action([](Module&, const Interaction*) {});
    module->set_state(transitions - 1);  // worst case for the linear chain
    module->set_dispatch(kind);
    spec.initialize();
  }
};

void BM_Dispatch(benchmark::State& state, DispatchKind kind) {
  const int transitions = static_cast<int>(state.range(0));
  FsmHolder holder(transitions, kind);
  for (auto _ : state) {
    const auto* t = holder.module->select_fireable(common::SimTime{});
    benchmark::DoNotOptimize(t);
  }
  state.counters["transitions"] = transitions;
  state.counters["guards_examined"] =
      static_cast<double>(holder.module->last_scan_effort());
}

}  // namespace

BENCHMARK_CAPTURE(BM_Dispatch, hardcoded_chain, DispatchKind::LinearScan)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_Dispatch, state_table, DispatchKind::StateTable)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

BENCHMARK_MAIN();
