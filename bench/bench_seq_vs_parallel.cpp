// §5.1 — Sequential vs. Parallel Implementation.
//
// Paper: "Even with this environment, we got a speedup (in comparison with
// the sequential version) of 1.4 to 2 with 2 connections, parallel
// presentation and session and a varying number of Data requests."
//
// This bench reruns that experiment on the simulated multiprocessor
// (DESIGN.md §2): the §5.1 worst-case workload (presentation+session
// kernels, very small P-Data units) at 1..8 connections and 16..512 data
// requests, sequential scheduler vs parallel scheduler with one unit per
// connection subtree. The row to compare against the paper is
// connections=2: speedup should land in the 1.4–2.0 band and grow with the
// number of requests (per-connection pipelining amortizes the handshake).
#include <cstdio>

#include "ps_workload.hpp"

using namespace mcam;
using namespace mcam::bench;

int main() {
  std::printf(
      "§5.1 sequential vs parallel presentation/session stacks\n"
      "(simulated multiprocessor; small P-Data units — worst case)\n\n");
  std::printf("%11s %9s %12s %12s %9s\n", "connections", "requests",
              "seq [ms]", "par [ms]", "speedup");

  for (int connections : {1, 2, 4, 8}) {
    for (int requests : {16, 64, 128, 256, 512}) {
      PsConfig cfg;
      cfg.connections = connections;
      cfg.requests = requests;

      const SimTime seq = run_sequential(cfg);
      // Processors sized like the KSR1 experiments: plenty for the units.
      const SimTime par = run_parallel(
          cfg, /*processors=*/2 * connections + 2,
          estelle::Mapping::ConnectionPerProcessor);
      const double speedup =
          static_cast<double>(seq.ns) / static_cast<double>(par.ns);
      std::printf("%11d %9d %12.3f %12.3f %8.2fx\n", connections, requests,
                  seq.millis(), par.millis(), speedup);
    }
    std::printf("\n");
  }

  std::printf(
      "paper reference: speedup 1.4–2.0 at 2 connections (varying data\n"
      "requests); higher gains with more connections / full protocols.\n");
  return 0;
}
