// §5.2 — Module pipelining.
//
// Paper: "Modules which perform several long-running computations
// sequentially may be split in two or more modules resulting in a module
// pipeline where data is processed in parallel. The right decision of
// whether to integrate modules or split them depends highly on the module
// runtime ... For protocols with only small processing times, the only
// useful parallelization will be the mapping of one connection to one
// processor, as those modules ... need no synchronization."
//
// A "codec" module processes N items, each requiring S stages of work of
// cost C. Monolithic: one module, transition cost S*C. Pipelined: S chained
// modules, cost C each, items flowing through channels. We sweep C and S
// and report the split/monolithic ratio: splitting wins for long stages,
// loses for short ones (the inter-module synchronization dominates).
#include <cstdio>

#include "estelle/executor.hpp"
#include "estelle/module.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::Interaction;
using estelle::Module;

namespace {

/// Feeds N items into the first stage.
class Feeder : public Module {
 public:
  Feeder(std::string name, int items, SimTime cost)
      : Module(std::move(name), Attribute::Process) {
    ip("out");
    trans("feed")
        .cost(cost)
        .provided([this, items](Module&, const Interaction*) {
          return fed_ < items;
        })
        .action([this](Module&, const Interaction*) {
          ++fed_;
          ip("out").output(Interaction(1));
        });
  }

 private:
  int fed_ = 0;
};

/// One pipeline stage: consumes an item, does `cost` work, forwards it.
class Stage : public Module {
 public:
  Stage(std::string name, SimTime cost, bool last)
      : Module(std::move(name), Attribute::Process) {
    auto& in = ip("in");
    if (!last) ip("out");
    trans("work").when(in, 1).cost(cost).action(
        [this, last](Module&, const Interaction*) {
          ++processed_;
          if (!last) ip("out").output(Interaction(1));
        });
  }
  [[nodiscard]] int processed() const noexcept { return processed_; }

 private:
  int processed_ = 0;
};

/// Completion time for a pipeline of `stages` modules (1 = monolithic).
SimTime run_pipeline(int items, int stages, SimTime stage_cost,
                     int processors) {
  estelle::Specification spec("pipe");
  auto& sys =
      spec.root().create_child<Module>("sys", Attribute::SystemProcess);
  auto& feeder = sys.create_child<Feeder>("feeder", items,
                                          SimTime::from_us(5));
  std::vector<Stage*> chain;
  for (int s = 0; s < stages; ++s) {
    // Monolithic variant: one stage carrying the full per-item cost.
    const SimTime cost =
        stages == 1 ? SimTime{stage_cost.ns} : stage_cost;
    chain.push_back(&sys.create_child<Stage>(
        "stage" + std::to_string(s + 1), cost, s == stages - 1));
  }
  estelle::connect(feeder.ip("out"), chain.front()->ip("in"));
  for (int s = 0; s + 1 < stages; ++s)
    estelle::connect(chain[static_cast<std::size_t>(s)]->ip("out"),
                     chain[static_cast<std::size_t>(s) + 1]->ip("in"));
  spec.initialize();

  auto executor = estelle::make_executor(
      spec, {.kind = estelle::ExecutorKind::ParallelSim,
             .processors = processors,
             .mapping = estelle::Mapping::ThreadPerModule});
  executor->run_until([&] { return chain.back()->processed() >= items; });
  return executor->now();
}

}  // namespace

int main() {
  const int kItems = 64;
  // Two processors: the interesting regime, where splitting a module adds
  // context-switch and message overhead that only long stages can amortize
  // ("the right decision ... depends highly on the module runtime").
  const int kProcessors = 2;
  std::printf(
      "§5.2 module pipelining — %d items through an S-stage computation\n"
      "(total per-item work = S x stage cost; %d simulated processors)\n\n",
      kItems, kProcessors);
  std::printf("%12s %8s %14s %14s %10s\n", "stage cost", "stages",
              "monolithic", "pipelined", "ratio");

  for (SimTime stage_cost : {SimTime::from_us(5), SimTime::from_us(10),
                             SimTime::from_us(50),
                             SimTime::from_us(200), SimTime::from_us(1000)}) {
    for (int stages : {2, 4}) {
      // Monolithic: one module doing stages*stage_cost per item.
      const SimTime mono = run_pipeline(
          kItems, 1, SimTime{stage_cost.ns * stages}, kProcessors);
      const SimTime piped =
          run_pipeline(kItems, stages, stage_cost, kProcessors);
      std::printf("%9lld us %8d %11.3f ms %11.3f ms %9.2fx%s\n",
                  static_cast<long long>(stage_cost.ns / 1000), stages,
                  mono.millis(), piped.millis(),
                  static_cast<double>(mono.ns) / static_cast<double>(piped.ns),
                  piped.ns < mono.ns ? "  << split wins" : "");
    }
  }

  std::printf(
      "\npaper reference: splitting pays off only when module runtimes are\n"
      "long; for small processing times the synchronization overhead of the\n"
      "extra channel hop eats the gain.\n");
  return 0;
}
