file(REMOVE_RECURSE
  "CMakeFiles/bench_hot_path.dir/bench/bench_hot_path.cpp.o"
  "CMakeFiles/bench_hot_path.dir/bench/bench_hot_path.cpp.o.d"
  "bench_hot_path"
  "bench_hot_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hot_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
