# Empty compiler generated dependencies file for bench_hot_path.
# This may be replaced when dependencies are built.
