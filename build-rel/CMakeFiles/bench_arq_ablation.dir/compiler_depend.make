# Empty compiler generated dependencies file for bench_arq_ablation.
# This may be replaced when dependencies are built.
