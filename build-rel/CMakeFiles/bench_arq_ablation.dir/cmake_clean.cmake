file(REMOVE_RECURSE
  "CMakeFiles/bench_arq_ablation.dir/bench/bench_arq_ablation.cpp.o"
  "CMakeFiles/bench_arq_ablation.dir/bench/bench_arq_ablation.cpp.o.d"
  "bench_arq_ablation"
  "bench_arq_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arq_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
