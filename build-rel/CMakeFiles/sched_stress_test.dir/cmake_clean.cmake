file(REMOVE_RECURSE
  "CMakeFiles/sched_stress_test.dir/tests/sched_stress_test.cpp.o"
  "CMakeFiles/sched_stress_test.dir/tests/sched_stress_test.cpp.o.d"
  "sched_stress_test"
  "sched_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
