# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ready_set_differential_test.
