# Empty compiler generated dependencies file for ready_set_differential_test.
# This may be replaced when dependencies are built.
