file(REMOVE_RECURSE
  "CMakeFiles/ready_set_differential_test.dir/tests/ready_set_differential_test.cpp.o"
  "CMakeFiles/ready_set_differential_test.dir/tests/ready_set_differential_test.cpp.o.d"
  "ready_set_differential_test"
  "ready_set_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ready_set_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
