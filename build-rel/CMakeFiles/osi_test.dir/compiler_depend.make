# Empty compiler generated dependencies file for osi_test.
# This may be replaced when dependencies are built.
