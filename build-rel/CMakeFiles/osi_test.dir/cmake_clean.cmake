file(REMOVE_RECURSE
  "CMakeFiles/osi_test.dir/tests/osi_test.cpp.o"
  "CMakeFiles/osi_test.dir/tests/osi_test.cpp.o.d"
  "osi_test"
  "osi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
