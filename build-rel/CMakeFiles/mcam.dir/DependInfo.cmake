
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asn1/ber.cpp" "CMakeFiles/mcam.dir/src/asn1/ber.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/asn1/ber.cpp.o.d"
  "/root/repo/src/asn1/parallel.cpp" "CMakeFiles/mcam.dir/src/asn1/parallel.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/asn1/parallel.cpp.o.d"
  "/root/repo/src/asn1/value.cpp" "CMakeFiles/mcam.dir/src/asn1/value.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/asn1/value.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "CMakeFiles/mcam.dir/src/common/bytes.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/common/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/mcam.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/common/log.cpp.o.d"
  "/root/repo/src/directory/directory.cpp" "CMakeFiles/mcam.dir/src/directory/directory.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/directory/directory.cpp.o.d"
  "/root/repo/src/equipment/equipment.cpp" "CMakeFiles/mcam.dir/src/equipment/equipment.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/equipment/equipment.cpp.o.d"
  "/root/repo/src/estelle/codegen.cpp" "CMakeFiles/mcam.dir/src/estelle/codegen.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/codegen.cpp.o.d"
  "/root/repo/src/estelle/conflict.cpp" "CMakeFiles/mcam.dir/src/estelle/conflict.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/conflict.cpp.o.d"
  "/root/repo/src/estelle/executor.cpp" "CMakeFiles/mcam.dir/src/estelle/executor.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/executor.cpp.o.d"
  "/root/repo/src/estelle/free_executor.cpp" "CMakeFiles/mcam.dir/src/estelle/free_executor.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/free_executor.cpp.o.d"
  "/root/repo/src/estelle/interaction.cpp" "CMakeFiles/mcam.dir/src/estelle/interaction.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/interaction.cpp.o.d"
  "/root/repo/src/estelle/metrics.cpp" "CMakeFiles/mcam.dir/src/estelle/metrics.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/metrics.cpp.o.d"
  "/root/repo/src/estelle/module.cpp" "CMakeFiles/mcam.dir/src/estelle/module.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/module.cpp.o.d"
  "/root/repo/src/estelle/ready_set.cpp" "CMakeFiles/mcam.dir/src/estelle/ready_set.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/ready_set.cpp.o.d"
  "/root/repo/src/estelle/sched.cpp" "CMakeFiles/mcam.dir/src/estelle/sched.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/sched.cpp.o.d"
  "/root/repo/src/estelle/shard_executor.cpp" "CMakeFiles/mcam.dir/src/estelle/shard_executor.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/shard_executor.cpp.o.d"
  "/root/repo/src/estelle/trace.cpp" "CMakeFiles/mcam.dir/src/estelle/trace.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/trace.cpp.o.d"
  "/root/repo/src/estelle/transport/buffer_chain.cpp" "CMakeFiles/mcam.dir/src/estelle/transport/buffer_chain.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/transport/buffer_chain.cpp.o.d"
  "/root/repo/src/estelle/transport/dist_runner.cpp" "CMakeFiles/mcam.dir/src/estelle/transport/dist_runner.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/transport/dist_runner.cpp.o.d"
  "/root/repo/src/estelle/transport/frame.cpp" "CMakeFiles/mcam.dir/src/estelle/transport/frame.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/transport/frame.cpp.o.d"
  "/root/repo/src/estelle/transport/socket_transport.cpp" "CMakeFiles/mcam.dir/src/estelle/transport/socket_transport.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/transport/socket_transport.cpp.o.d"
  "/root/repo/src/estelle/transport/transport.cpp" "CMakeFiles/mcam.dir/src/estelle/transport/transport.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/transport/transport.cpp.o.d"
  "/root/repo/src/estelle/worker_pool.cpp" "CMakeFiles/mcam.dir/src/estelle/worker_pool.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/estelle/worker_pool.cpp.o.d"
  "/root/repo/src/mcam/client.cpp" "CMakeFiles/mcam.dir/src/mcam/client.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mcam/client.cpp.o.d"
  "/root/repo/src/mcam/mca.cpp" "CMakeFiles/mcam.dir/src/mcam/mca.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mcam/mca.cpp.o.d"
  "/root/repo/src/mcam/pdus.cpp" "CMakeFiles/mcam.dir/src/mcam/pdus.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mcam/pdus.cpp.o.d"
  "/root/repo/src/mcam/server_core.cpp" "CMakeFiles/mcam.dir/src/mcam/server_core.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mcam/server_core.cpp.o.d"
  "/root/repo/src/mcam/testbed.cpp" "CMakeFiles/mcam.dir/src/mcam/testbed.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mcam/testbed.cpp.o.d"
  "/root/repo/src/mtp/colormap.cpp" "CMakeFiles/mcam.dir/src/mtp/colormap.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mtp/colormap.cpp.o.d"
  "/root/repo/src/mtp/mtp.cpp" "CMakeFiles/mcam.dir/src/mtp/mtp.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mtp/mtp.cpp.o.d"
  "/root/repo/src/mtp/sps.cpp" "CMakeFiles/mcam.dir/src/mtp/sps.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/mtp/sps.cpp.o.d"
  "/root/repo/src/net/network.cpp" "CMakeFiles/mcam.dir/src/net/network.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/net/network.cpp.o.d"
  "/root/repo/src/osi/acse.cpp" "CMakeFiles/mcam.dir/src/osi/acse.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/osi/acse.cpp.o.d"
  "/root/repo/src/osi/isode.cpp" "CMakeFiles/mcam.dir/src/osi/isode.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/osi/isode.cpp.o.d"
  "/root/repo/src/osi/presentation.cpp" "CMakeFiles/mcam.dir/src/osi/presentation.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/osi/presentation.cpp.o.d"
  "/root/repo/src/osi/session.cpp" "CMakeFiles/mcam.dir/src/osi/session.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/osi/session.cpp.o.d"
  "/root/repo/src/osi/stack.cpp" "CMakeFiles/mcam.dir/src/osi/stack.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/osi/stack.cpp.o.d"
  "/root/repo/src/osi/transport.cpp" "CMakeFiles/mcam.dir/src/osi/transport.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/osi/transport.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/mcam.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/mcam.dir/src/sim/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
