file(REMOVE_RECURSE
  "libmcam.a"
)
