# Empty dependencies file for mcam.
# This may be replaced when dependencies are built.
