# Empty dependencies file for bench_asn1.
# This may be replaced when dependencies are built.
