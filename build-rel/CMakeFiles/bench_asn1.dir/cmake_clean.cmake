file(REMOVE_RECURSE
  "CMakeFiles/bench_asn1.dir/bench/bench_asn1.cpp.o"
  "CMakeFiles/bench_asn1.dir/bench/bench_asn1.cpp.o.d"
  "bench_asn1"
  "bench_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
