file(REMOVE_RECURSE
  "CMakeFiles/dist_runner_test.dir/tests/dist_runner_test.cpp.o"
  "CMakeFiles/dist_runner_test.dir/tests/dist_runner_test.cpp.o.d"
  "dist_runner_test"
  "dist_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
