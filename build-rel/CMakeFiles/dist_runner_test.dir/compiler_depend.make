# Empty compiler generated dependencies file for dist_runner_test.
# This may be replaced when dependencies are built.
