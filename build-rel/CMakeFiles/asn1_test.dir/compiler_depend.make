# Empty compiler generated dependencies file for asn1_test.
# This may be replaced when dependencies are built.
