file(REMOVE_RECURSE
  "CMakeFiles/asn1_test.dir/tests/asn1_test.cpp.o"
  "CMakeFiles/asn1_test.dir/tests/asn1_test.cpp.o.d"
  "asn1_test"
  "asn1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asn1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
