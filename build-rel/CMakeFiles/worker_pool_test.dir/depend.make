# Empty dependencies file for worker_pool_test.
# This may be replaced when dependencies are built.
