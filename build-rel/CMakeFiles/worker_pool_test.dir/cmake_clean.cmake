file(REMOVE_RECURSE
  "CMakeFiles/worker_pool_test.dir/tests/worker_pool_test.cpp.o"
  "CMakeFiles/worker_pool_test.dir/tests/worker_pool_test.cpp.o.d"
  "worker_pool_test"
  "worker_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
