# Empty dependencies file for example_functional_model.
# This may be replaced when dependencies are built.
