file(REMOVE_RECURSE
  "CMakeFiles/example_functional_model.dir/examples/functional_model.cpp.o"
  "CMakeFiles/example_functional_model.dir/examples/functional_model.cpp.o.d"
  "example_functional_model"
  "example_functional_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_functional_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
