# Empty compiler generated dependencies file for mcam_integration_test.
# This may be replaced when dependencies are built.
