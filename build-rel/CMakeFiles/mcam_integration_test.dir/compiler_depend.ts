# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mcam_integration_test.
