file(REMOVE_RECURSE
  "CMakeFiles/mcam_integration_test.dir/tests/mcam_integration_test.cpp.o"
  "CMakeFiles/mcam_integration_test.dir/tests/mcam_integration_test.cpp.o.d"
  "mcam_integration_test"
  "mcam_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcam_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
