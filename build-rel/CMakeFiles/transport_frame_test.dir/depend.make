# Empty dependencies file for transport_frame_test.
# This may be replaced when dependencies are built.
