file(REMOVE_RECURSE
  "CMakeFiles/transport_frame_test.dir/tests/transport_frame_test.cpp.o"
  "CMakeFiles/transport_frame_test.dir/tests/transport_frame_test.cpp.o.d"
  "transport_frame_test"
  "transport_frame_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
