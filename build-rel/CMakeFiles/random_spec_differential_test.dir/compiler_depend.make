# Empty compiler generated dependencies file for random_spec_differential_test.
# This may be replaced when dependencies are built.
