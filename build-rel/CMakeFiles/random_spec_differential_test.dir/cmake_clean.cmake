file(REMOVE_RECURSE
  "CMakeFiles/random_spec_differential_test.dir/tests/random_spec_differential_test.cpp.o"
  "CMakeFiles/random_spec_differential_test.dir/tests/random_spec_differential_test.cpp.o.d"
  "random_spec_differential_test"
  "random_spec_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_spec_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
