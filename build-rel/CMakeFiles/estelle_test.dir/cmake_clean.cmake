file(REMOVE_RECURSE
  "CMakeFiles/estelle_test.dir/tests/estelle_test.cpp.o"
  "CMakeFiles/estelle_test.dir/tests/estelle_test.cpp.o.d"
  "estelle_test"
  "estelle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estelle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
