# Empty compiler generated dependencies file for estelle_test.
# This may be replaced when dependencies are built.
