# Empty compiler generated dependencies file for acse_test.
# This may be replaced when dependencies are built.
