file(REMOVE_RECURSE
  "CMakeFiles/acse_test.dir/tests/acse_test.cpp.o"
  "CMakeFiles/acse_test.dir/tests/acse_test.cpp.o.d"
  "acse_test"
  "acse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
