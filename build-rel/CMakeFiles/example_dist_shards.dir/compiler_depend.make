# Empty compiler generated dependencies file for example_dist_shards.
# This may be replaced when dependencies are built.
