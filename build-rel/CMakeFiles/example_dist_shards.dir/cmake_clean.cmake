file(REMOVE_RECURSE
  "CMakeFiles/example_dist_shards.dir/examples/dist_shards.cpp.o"
  "CMakeFiles/example_dist_shards.dir/examples/dist_shards.cpp.o.d"
  "example_dist_shards"
  "example_dist_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dist_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
