file(REMOVE_RECURSE
  "CMakeFiles/mcam_pdus_test.dir/tests/mcam_pdus_test.cpp.o"
  "CMakeFiles/mcam_pdus_test.dir/tests/mcam_pdus_test.cpp.o.d"
  "mcam_pdus_test"
  "mcam_pdus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcam_pdus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
