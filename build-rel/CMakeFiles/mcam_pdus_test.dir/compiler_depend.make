# Empty compiler generated dependencies file for mcam_pdus_test.
# This may be replaced when dependencies are built.
