file(REMOVE_RECURSE
  "CMakeFiles/equivalence_property_test.dir/tests/equivalence_property_test.cpp.o"
  "CMakeFiles/equivalence_property_test.dir/tests/equivalence_property_test.cpp.o.d"
  "equivalence_property_test"
  "equivalence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
