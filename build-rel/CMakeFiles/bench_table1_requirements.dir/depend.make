# Empty dependencies file for bench_table1_requirements.
# This may be replaced when dependencies are built.
