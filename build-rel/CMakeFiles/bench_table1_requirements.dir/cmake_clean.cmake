file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_requirements.dir/bench/bench_table1_requirements.cpp.o"
  "CMakeFiles/bench_table1_requirements.dir/bench/bench_table1_requirements.cpp.o.d"
  "bench_table1_requirements"
  "bench_table1_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
