# Empty compiler generated dependencies file for mtp_test.
# This may be replaced when dependencies are built.
