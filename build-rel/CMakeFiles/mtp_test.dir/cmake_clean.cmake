file(REMOVE_RECURSE
  "CMakeFiles/mtp_test.dir/tests/mtp_test.cpp.o"
  "CMakeFiles/mtp_test.dir/tests/mtp_test.cpp.o.d"
  "mtp_test"
  "mtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
