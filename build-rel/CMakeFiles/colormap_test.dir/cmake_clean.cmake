file(REMOVE_RECURSE
  "CMakeFiles/colormap_test.dir/tests/colormap_test.cpp.o"
  "CMakeFiles/colormap_test.dir/tests/colormap_test.cpp.o.d"
  "colormap_test"
  "colormap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colormap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
