# Empty compiler generated dependencies file for colormap_test.
# This may be replaced when dependencies are built.
