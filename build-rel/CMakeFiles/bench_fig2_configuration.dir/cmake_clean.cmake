file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_configuration.dir/bench/bench_fig2_configuration.cpp.o"
  "CMakeFiles/bench_fig2_configuration.dir/bench/bench_fig2_configuration.cpp.o.d"
  "bench_fig2_configuration"
  "bench_fig2_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
