file(REMOVE_RECURSE
  "CMakeFiles/bench_transitions.dir/bench/bench_transitions.cpp.o"
  "CMakeFiles/bench_transitions.dir/bench/bench_transitions.cpp.o.d"
  "bench_transitions"
  "bench_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
