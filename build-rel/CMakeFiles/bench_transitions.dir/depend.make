# Empty dependencies file for bench_transitions.
# This may be replaced when dependencies are built.
