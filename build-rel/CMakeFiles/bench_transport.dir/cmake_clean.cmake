file(REMOVE_RECURSE
  "CMakeFiles/bench_transport.dir/bench/bench_transport.cpp.o"
  "CMakeFiles/bench_transport.dir/bench/bench_transport.cpp.o.d"
  "bench_transport"
  "bench_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
