# Empty dependencies file for bench_transport.
# This may be replaced when dependencies are built.
