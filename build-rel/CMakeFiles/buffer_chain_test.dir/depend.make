# Empty dependencies file for buffer_chain_test.
# This may be replaced when dependencies are built.
