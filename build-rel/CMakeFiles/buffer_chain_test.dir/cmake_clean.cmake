file(REMOVE_RECURSE
  "CMakeFiles/buffer_chain_test.dir/tests/buffer_chain_test.cpp.o"
  "CMakeFiles/buffer_chain_test.dir/tests/buffer_chain_test.cpp.o.d"
  "buffer_chain_test"
  "buffer_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
