file(REMOVE_RECURSE
  "CMakeFiles/executor_conformance_test.dir/tests/executor_conformance_test.cpp.o"
  "CMakeFiles/executor_conformance_test.dir/tests/executor_conformance_test.cpp.o.d"
  "executor_conformance_test"
  "executor_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
