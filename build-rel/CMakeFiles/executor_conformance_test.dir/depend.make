# Empty dependencies file for executor_conformance_test.
# This may be replaced when dependencies are built.
