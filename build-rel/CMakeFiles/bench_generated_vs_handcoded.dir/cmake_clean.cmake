file(REMOVE_RECURSE
  "CMakeFiles/bench_generated_vs_handcoded.dir/bench/bench_generated_vs_handcoded.cpp.o"
  "CMakeFiles/bench_generated_vs_handcoded.dir/bench/bench_generated_vs_handcoded.cpp.o.d"
  "bench_generated_vs_handcoded"
  "bench_generated_vs_handcoded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generated_vs_handcoded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
