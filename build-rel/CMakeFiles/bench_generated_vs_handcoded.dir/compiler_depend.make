# Empty compiler generated dependencies file for bench_generated_vs_handcoded.
# This may be replaced when dependencies are built.
