file(REMOVE_RECURSE
  "CMakeFiles/osi_layers_test.dir/tests/osi_layers_test.cpp.o"
  "CMakeFiles/osi_layers_test.dir/tests/osi_layers_test.cpp.o.d"
  "osi_layers_test"
  "osi_layers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osi_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
