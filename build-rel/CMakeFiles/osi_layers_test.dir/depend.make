# Empty dependencies file for osi_layers_test.
# This may be replaced when dependencies are built.
