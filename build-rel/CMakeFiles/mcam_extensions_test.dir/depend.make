# Empty dependencies file for mcam_extensions_test.
# This may be replaced when dependencies are built.
