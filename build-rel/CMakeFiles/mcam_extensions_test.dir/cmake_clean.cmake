file(REMOVE_RECURSE
  "CMakeFiles/mcam_extensions_test.dir/tests/mcam_extensions_test.cpp.o"
  "CMakeFiles/mcam_extensions_test.dir/tests/mcam_extensions_test.cpp.o.d"
  "mcam_extensions_test"
  "mcam_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcam_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
