file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_server.dir/examples/parallel_server.cpp.o"
  "CMakeFiles/example_parallel_server.dir/examples/parallel_server.cpp.o.d"
  "example_parallel_server"
  "example_parallel_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
