# Empty compiler generated dependencies file for example_parallel_server.
# This may be replaced when dependencies are built.
