file(REMOVE_RECURSE
  "CMakeFiles/directory_test.dir/tests/directory_test.cpp.o"
  "CMakeFiles/directory_test.dir/tests/directory_test.cpp.o.d"
  "directory_test"
  "directory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
