# Empty compiler generated dependencies file for free_running_test.
# This may be replaced when dependencies are built.
