file(REMOVE_RECURSE
  "CMakeFiles/free_running_test.dir/tests/free_running_test.cpp.o"
  "CMakeFiles/free_running_test.dir/tests/free_running_test.cpp.o.d"
  "free_running_test"
  "free_running_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/free_running_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
