# Empty compiler generated dependencies file for example_video_on_demand.
# This may be replaced when dependencies are built.
