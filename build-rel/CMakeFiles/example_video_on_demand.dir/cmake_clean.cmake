file(REMOVE_RECURSE
  "CMakeFiles/example_video_on_demand.dir/examples/video_on_demand.cpp.o"
  "CMakeFiles/example_video_on_demand.dir/examples/video_on_demand.cpp.o.d"
  "example_video_on_demand"
  "example_video_on_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_on_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
