# Empty compiler generated dependencies file for bench_seq_vs_parallel.
# This may be replaced when dependencies are built.
