file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_vs_parallel.dir/bench/bench_seq_vs_parallel.cpp.o"
  "CMakeFiles/bench_seq_vs_parallel.dir/bench/bench_seq_vs_parallel.cpp.o.d"
  "bench_seq_vs_parallel"
  "bench_seq_vs_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_vs_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
