# Empty dependencies file for bench_sharded_scaling.
# This may be replaced when dependencies are built.
