file(REMOVE_RECURSE
  "CMakeFiles/bench_sharded_scaling.dir/bench/bench_sharded_scaling.cpp.o"
  "CMakeFiles/bench_sharded_scaling.dir/bench/bench_sharded_scaling.cpp.o.d"
  "bench_sharded_scaling"
  "bench_sharded_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharded_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
