# Empty dependencies file for equipment_test.
# This may be replaced when dependencies are built.
