file(REMOVE_RECURSE
  "CMakeFiles/equipment_test.dir/tests/equipment_test.cpp.o"
  "CMakeFiles/equipment_test.dir/tests/equipment_test.cpp.o.d"
  "equipment_test"
  "equipment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equipment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
