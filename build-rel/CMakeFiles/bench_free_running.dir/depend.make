# Empty dependencies file for bench_free_running.
# This may be replaced when dependencies are built.
