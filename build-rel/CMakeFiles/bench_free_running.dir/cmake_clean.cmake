file(REMOVE_RECURSE
  "CMakeFiles/bench_free_running.dir/bench/bench_free_running.cpp.o"
  "CMakeFiles/bench_free_running.dir/bench/bench_free_running.cpp.o.d"
  "bench_free_running"
  "bench_free_running.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_free_running.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
