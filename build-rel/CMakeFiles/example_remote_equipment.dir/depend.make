# Empty dependencies file for example_remote_equipment.
# This may be replaced when dependencies are built.
