file(REMOVE_RECURSE
  "CMakeFiles/example_remote_equipment.dir/examples/remote_equipment.cpp.o"
  "CMakeFiles/example_remote_equipment.dir/examples/remote_equipment.cpp.o.d"
  "example_remote_equipment"
  "example_remote_equipment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_remote_equipment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
