// Parallel server entities — the paper's §1 motivation made tangible.
//
// "Imagine systems in which one machine has to serve thousands of clients
// simultaneously without noticeable performance degradation." This example
// builds a server with many MCAM connections, pre-loads a batch of control
// transactions on each, and executes the same workload under the sequential
// scheduler and under the simulated multiprocessor at increasing processor
// counts, printing the per-transaction latency as the server scales.
//
// Run: ./parallel_server [connections] [requests]
#include <cstdio>
#include <cstdlib>

#include "estelle/executor.hpp"
#include "mcam/testbed.hpp"

using namespace mcam;
using common::SimTime;
using core::Testbed;

namespace {

SimTime run_batch(int clients, int conns_per_client, int requests,
                  int processors) {
  Testbed::Config cfg;
  cfg.clients = clients;
  cfg.connections_per_client = conns_per_client;
  Testbed bed(cfg);
  directory::MovieEntry e;
  e.title = "movie";
  e.duration_frames = 10;
  e.location_host = cfg.server_host;
  (void)bed.server().directory().add(e);

  std::vector<estelle::InteractionPoint*> inboxes;
  for (int c = 0; c < clients; ++c) {
    for (int k = 0; k < conns_per_client; ++k) {
      auto& app = *bed.connection(c, k).app;
      app.mca().output(estelle::Interaction(
          static_cast<int>(core::Op::AssociateReq),
          core::encode(core::Pdu{core::AssociateReq{"user", 1}})));
      for (int i = 0; i < requests; ++i)
        app.mca().output(estelle::Interaction(
            static_cast<int>(core::Op::AttrQueryReq),
            core::encode(core::Pdu{core::AttrQueryReq{1, {"title"}}})));
      inboxes.push_back(&app.mca());
    }
  }
  const std::size_t expect = static_cast<std::size_t>(requests) + 1;
  auto done = [&] {
    for (auto* inbox : inboxes)
      if (inbox->queue_length() < expect) return false;
    return true;
  };

  estelle::ExecutorConfig runtime;  // sequential when processors == 0
  if (processors > 0) {
    runtime.kind = estelle::ExecutorKind::ParallelSim;
    runtime.processors = processors;
    runtime.mapping = estelle::Mapping::ConnectionPerProcessor;
  }
  auto executor = estelle::make_executor(bed.spec(), runtime);
  executor->run_until(done);
  return executor->now();
}

}  // namespace

int main(int argc, char** argv) {
  const int connections = argc > 1 ? std::atoi(argv[1]) : 12;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 32;
  const int clients = 4;  // four uniprocessor workstations
  const int per_client = connections / clients;
  const int total_tx = connections * (requests + 1);

  std::printf(
      "parallel MCAM server — %d connections from %d client workstations,\n"
      "%d control transactions per connection (%d total)\n\n",
      connections, clients, requests + 1, total_tx);
  std::printf("%12s %14s %16s %9s\n", "processors", "time",
              "per transaction", "speedup");

  const SimTime seq = run_batch(clients, per_client, requests, 0);
  std::printf("%12s %11.3f ms %13.1f us %9s\n", "sequential", seq.millis(),
              seq.micros() / total_tx, "1.00x");
  for (int procs : {2, 4, 8, 16, 32}) {
    const SimTime t = run_batch(clients, per_client, requests, procs);
    std::printf("%12d %11.3f ms %13.1f us %8.2fx\n", procs, t.millis(),
                t.micros() / total_tx,
                static_cast<double>(seq.ns) / static_cast<double>(t.ns));
  }
  std::printf(
      "\nthe KSR1 thesis of §1: adding processors to the server machine\n"
      "absorbs more simultaneous clients at near-constant per-transaction "
      "cost.\n");
  return 0;
}
