// Fig. 1 — the MCAM functional model, agent by agent.
//
// Instantiates every box of the paper's functional model and exercises each
// inter-agent path directly (below the wire protocol):
//
//   directory level:  DUA ↔ DSA ↔ DSA (chained X.500-style operation)
//   MCAM level:       MCA client ↔ MCA server over the generated stack
//   CM-stream level:  SUA ↔ SPA over MTP
//   equipment level:  EUA ↔ ECA
//
// Run: ./functional_model
#include <cstdio>

#include "mcam/testbed.hpp"

using namespace mcam;

int main() {
  core::Testbed bed(core::Testbed::Config{});

  // ---- Directory level: two DSAs, entries distributed, chained search ----
  directory::Dsa remote_dsa("archive-host");
  bed.server().directory().add_peer(remote_dsa);
  {
    directory::MovieEntry local;
    local.title = "local-news";
    local.duration_frames = 50;
    local.location_host = bed.config().server_host;
    (void)bed.server().directory().add(local);

    directory::MovieEntry archived;
    archived.title = "archived-lecture";
    archived.duration_frames = 60;
    archived.location_host = "archive-host";
    (void)remote_dsa.add(archived);
  }
  directory::Dua dua(bed.server().directory());
  std::printf("== directory level (DUA -> DSA -> peer DSA) ==\n");
  for (const auto& hit :
       dua.search(directory::Filter::present("title"), /*chained=*/true))
    std::printf("  found '%s' at %s\n", hit.title.c_str(),
                hit.location_host.c_str());

  // ---- Equipment level: EUA -> ECA ----
  std::printf("== equipment level (EUA -> ECA) ==\n");
  const auto spk = bed.server().eca().register_device(
      equipment::Kind::Speaker, "hall-speaker", {{"volume", 20}});
  equipment::EquipmentUserAgent eua(bed.server().eca(), "demo-user");
  (void)eua.power_on(spk);
  (void)eua.set_param(spk, "volume", 65);
  std::printf("  speaker powered=%d volume=%d\n",
              eua.status(spk).value().powered,
              eua.status(spk).value().params.at("volume"));

  // ---- MCAM application protocol level: MCA <-> MCA over P/S/TP ----
  std::printf("== MCAM level (MCA client <-> MCA server) ==\n");
  core::McamClient client = bed.client(0);
  (void)client.associate("fig1-user");
  auto select = client.select_movie("local-news");
  std::printf("  selected '%s' (movie id %llu) through the control stack\n",
              "local-news",
              static_cast<unsigned long long>(select.value().movie_id));

  // ---- CM-stream level: SPA -> SUA over MTP ----
  std::printf("== CM-stream level (SPA -> SUA over MTP) ==\n");
  mtp::StreamUserAgent& sua = bed.make_sua(0, 7000);
  (void)client.play(select.value().movie_id, bed.client_host(0), 7000);
  bed.advance_streams(common::SimTime::from_s(3));
  std::printf("  SUA received %llu frames, jitter %.2f ms\n",
              static_cast<unsigned long long>(sua.stats().frames_complete),
              sua.stats().jitter_ms);

  (void)client.stop(select.value().movie_id);
  (void)client.release();
  std::printf("all four Fig. 1 levels exercised.\n");
  return 0;
}
