// Remote equipment control and recording (§2: "the equipment control
// service enables the user to control CM equipment attached to remote
// computer systems, e.g. speakers, cameras, and microphones").
//
// A studio operator lists the server's devices over MCAM, powers up and
// tunes a camera, records a clip from it, then plays the fresh recording
// back — the full access/management/control loop, plus the ECS reservation
// discipline keeping a second user out of a busy device.
//
// Run: ./remote_equipment
#include <cstdio>

#include "mcam/testbed.hpp"

using namespace mcam;
using core::Testbed;
using equipment::Command;
using equipment::Kind;

int main() {
  Testbed::Config cfg;
  cfg.clients = 2;
  Testbed bed(cfg);

  auto& eca = bed.server().eca();
  const auto cam = eca.register_device(Kind::Camera, "studio-cam-1",
                                       {{"brightness", 50}, {"zoom", 0}});
  eca.register_device(Kind::Microphone, "boom-mic", {{"gain", 40}});
  eca.register_device(Kind::Speaker, "monitor-speaker", {{"volume", 35}});

  core::McamClient operator_client = bed.client(0);
  core::McamClient intruder = bed.client(1);
  (void)operator_client.associate("operator");
  (void)intruder.associate("intruder");

  // 1. Discover equipment through the protocol.
  auto listing = operator_client.list_equipment();
  std::printf("equipment on %s:\n", bed.config().server_host.c_str());
  for (const core::EquipItem& item : listing.value().items)
    std::printf("  #%u %-16s %-11s powered=%s\n", item.id, item.name.c_str(),
                equipment::kind_name(static_cast<Kind>(item.kind)),
                item.powered ? "yes" : "no");

  // 2. Tune the camera.
  (void)operator_client.control_equipment(cam,
                                          static_cast<int>(Command::PowerOn));
  auto set = operator_client.control_equipment(
      cam, static_cast<int>(Command::SetParam), "brightness", 72);
  std::printf("camera brightness set to %d\n", set.value().value);

  // 3. Record ~3 seconds from the camera; recording reserves the device.
  auto rec = operator_client.record("studio-session",
                                    cam, {{"fps", "25"}, {"format", "mjpeg"}});
  std::printf("recording movie id=%llu from camera #%u\n",
              static_cast<unsigned long long>(rec.value().movie_id), cam);

  // Another association cannot grab the camera mid-recording.
  auto steal = intruder.control_equipment(
      cam, static_cast<int>(Command::Reserve));
  std::printf("intruder reserve attempt -> %s\n",
              core::result_name(steal.value().result));

  bed.advance_streams(common::SimTime::from_s(3));
  auto stopped = operator_client.record_stop(rec.value().movie_id);
  std::printf("recorded %llu frames\n",
              static_cast<unsigned long long>(stopped.value().frames));

  // 4. Select and play back the new recording.
  auto select = operator_client.select_movie("studio-session");
  mtp::StreamUserAgent& sua = bed.make_sua(0, 7100);
  (void)operator_client.play(select.value().movie_id, bed.client_host(0),
                             7100);
  bed.advance_streams(common::SimTime::from_s(4));
  std::printf("playback delivered %llu/%llu frames\n",
              static_cast<unsigned long long>(sua.stats().frames_complete),
              static_cast<unsigned long long>(stopped.value().frames));

  (void)operator_client.stop(select.value().movie_id);
  (void)operator_client.release();
  (void)intruder.release();
  return 0;
}
