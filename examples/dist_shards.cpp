// Distributed shard runtime — one FreeRunning shard group per process.
//
// The paper's §4 observation (system modules are mutually independent,
// asynchronous units placeable on separate processors) run end to end: a
// token ring of `--systems` system modules is cut into shards, every process
// owns the shards assigned to its node id, and the three free-running
// synchronization primitives travel between processes as BER frames over a
// pluggable MailboxTransport.
//
// Single-process demo (N nodes as threads over the loopback transport):
//   ./example_dist_shards --nodes 3
//
// Real processes over Unix-domain sockets (run one per terminal):
//   ./example_dist_shards --nodes 2 --node 0 --transport unix --dir /tmp/ring
//   ./example_dist_shards --nodes 2 --node 1 --transport unix --dir /tmp/ring
//
// Same over TCP loopback:
//   ./example_dist_shards --nodes 2 --node 0 --transport tcp --port 47310
//   ./example_dist_shards --nodes 2 --node 1 --transport tcp --port 47310
//
// Every process must be launched with the same --systems/--tokens: the
// membership handshake fingerprints the specification structure and refuses
// a divergent peer instead of computing a silently wrong run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "asn1/value.hpp"
#include "estelle/executor.hpp"
#include "estelle/metrics.hpp"
#include "estelle/module.hpp"
#include "estelle/transport/dist_runner.hpp"
#include "estelle/transport/socket_transport.hpp"
#include "estelle/transport/transport.hpp"

using namespace mcam;
using common::SimTime;
using estelle::Attribute;
using estelle::Interaction;
using estelle::Module;

namespace {

struct Args {
  int node = 0;
  int nodes = 2;
  std::string transport = "loopback";  // loopback | unix | tcp
  std::string dir = "/tmp/mcam_ring";
  int port = 47310;
  int systems = 4;
  int tokens = 64;
  /// In-node parallelism: shard continuations per process. 0 lets the
  /// runner size to hardware_concurrency; 1 forces the sequential loop.
  int workers = 0;
  /// --hosts h0,h1[:port],... — one entry per node for a TCP mesh that
  /// spans machines. Empty keeps the single-machine loopback default.
  std::vector<std::string> hosts;
  /// Session-layer knobs; -1 keeps the DistOptions default. Attempts = 0
  /// disables reconnect/resume entirely (a lost link aborts the run).
  int reconnect_attempts = -1;
  int backoff_initial_ms = -1;
  int backoff_cap_ms = -1;
  int heartbeat_ms = -1;
};

/// Token ring: worker 0 seeds `tokens` tokens; each worker forwards to the
/// next system module; a full lap ends back at worker 0's sink. Every hop of
/// every token crosses a shard boundary, so with nodes > 1 most hops cross a
/// process boundary too. Structure is a pure function of (systems, tokens) —
/// the handshake fingerprint every process must agree on.
struct RingWorld {
  estelle::Specification spec{"token_ring"};
  std::shared_ptr<int> seeded = std::make_shared<int>(0);
  std::shared_ptr<int> laps = std::make_shared<int>(0);

  RingWorld(int systems, int tokens) {
    std::vector<Module*> workers;
    for (int i = 0; i < systems; ++i) {
      auto& sys = spec.root().create_child<Module>("s" + std::to_string(i),
                                                   Attribute::SystemProcess);
      workers.push_back(
          &sys.create_child<Module>("w", Attribute::Process));
    }
    for (int i = 0; i < systems; ++i)
      connect(workers[static_cast<std::size_t>(i)]->ip("out"),
              workers[static_cast<std::size_t>((i + 1) % systems)]->ip("in"));

    estelle::InteractionPoint* seed_out = &workers[0]->ip("out");
    workers[0]
        ->trans("seed")
        .cost(SimTime::from_us(4))
        .provided([seeded = seeded, tokens](Module&, const Interaction*) {
          return *seeded < tokens;
        })
        .action([seeded = seeded, seed_out](Module& m, const Interaction*) {
          ++*seeded;
          seed_out->output(Interaction(1, asn1::Value::integer(*seeded)));
          m.set_state(m.state() + 1);
        });
    workers[0]->trans("sink").when(workers[0]->ip("in"))
        .cost(SimTime::from_us(2))
        .action([laps = laps](Module& m, const Interaction*) {
          ++*laps;
          m.set_state(m.state() + 1);
        });
    for (int i = 1; i < systems; ++i) {
      Module* w = workers[static_cast<std::size_t>(i)];
      estelle::InteractionPoint* out = &w->ip("out");
      w->trans("fwd").when(w->ip("in")).cost(SimTime::from_us(3)).action(
          [out](Module& m, const Interaction* msg) {
            out->output(Interaction(1, msg->value));
            m.set_state(m.state() + 1);
          });
    }
    spec.initialize();
  }
};

int run_node(const Args& args, int node,
             std::shared_ptr<estelle::MailboxTransport> transport) {
  RingWorld world(args.systems, args.tokens);
  estelle::DistOptions opts;
  opts.node = node;
  opts.nodes = args.nodes;
  opts.transport = std::move(transport);
  opts.peer_hosts = args.hosts;
  if (args.reconnect_attempts >= 0)
    opts.reconnect_max_attempts = args.reconnect_attempts;
  if (args.backoff_initial_ms >= 0)
    opts.backoff_initial_ms = args.backoff_initial_ms;
  if (args.backoff_cap_ms >= 0) opts.backoff_cap_ms = args.backoff_cap_ms;
  if (args.heartbeat_ms >= 0) opts.heartbeat_interval_ms = args.heartbeat_ms;
  opts.worker_count = args.workers;
  estelle::ExecutorConfig cfg;
  cfg.kind = estelle::ExecutorKind::Distributed;
  cfg.backend_options = opts;
  auto executor = make_executor(world.spec, cfg);
  estelle::MetricsObserver metrics;
  const estelle::RunReport r = executor->run({.observers = {&metrics}});

  if (r.reason != estelle::StopReason::Quiescent) {
    std::fprintf(stderr, "node %d: run ended abnormally: %s\n", node,
                 r.error.empty() ? "(no error text)" : r.error.c_str());
    return 1;
  }
  std::printf(
      "node %d: quiescent at t=%.1f us — %llu firings, %llu rounds, "
      "%d tokens seeded, %d full laps, %llu workers/node\n",
      node, executor->now().micros(),
      static_cast<unsigned long long>(r.fired),
      static_cast<unsigned long long>(r.stats.rounds), *world.seeded,
      *world.laps,
      static_cast<unsigned long long>(r.transport.node_workers));
  std::printf("%s", metrics.to_string(3).c_str());
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes N] [--node I] [--transport "
               "loopback|unix|tcp]\n          [--dir PATH] [--port P] "
               "[--hosts h0,h1[:port],...] [--systems K] [--tokens T]\n"
               "          [--workers W] [--reconnect-attempts A] "
               "[--backoff-initial-ms B]\n"
               "          [--backoff-cap-ms C] [--heartbeat-ms H]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const auto want = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want("--node")) args.node = std::atoi(argv[++i]);
    else if (want("--nodes")) args.nodes = std::atoi(argv[++i]);
    else if (want("--transport")) args.transport = argv[++i];
    else if (want("--dir")) args.dir = argv[++i];
    else if (want("--port")) args.port = std::atoi(argv[++i]);
    else if (want("--hosts")) {
      std::string list = argv[++i];
      for (std::size_t at = 0; at <= list.size();) {
        const std::size_t comma = std::min(list.find(',', at), list.size());
        args.hosts.push_back(list.substr(at, comma - at));
        at = comma + 1;
      }
    }
    else if (want("--systems")) args.systems = std::atoi(argv[++i]);
    else if (want("--tokens")) args.tokens = std::atoi(argv[++i]);
    else if (want("--workers")) args.workers = std::atoi(argv[++i]);
    else if (want("--reconnect-attempts"))
      args.reconnect_attempts = std::atoi(argv[++i]);
    else if (want("--backoff-initial-ms"))
      args.backoff_initial_ms = std::atoi(argv[++i]);
    else if (want("--backoff-cap-ms")) args.backoff_cap_ms = std::atoi(argv[++i]);
    else if (want("--heartbeat-ms")) args.heartbeat_ms = std::atoi(argv[++i]);
    else return usage(argv[0]);
  }
  if (args.nodes < 1 || args.node < 0 || args.node >= args.nodes ||
      args.systems < 2 || args.workers < 0)
    return usage(argv[0]);

  std::printf("token ring: %d system modules, %d tokens, %d node%s (%s)\n",
              args.systems, args.tokens, args.nodes,
              args.nodes == 1 ? "" : "s", args.transport.c_str());

  if (args.transport == "loopback") {
    // Demo mode: all nodes in this process, one thread each.
    estelle::LoopbackHub hub(args.nodes);
    std::vector<std::shared_ptr<estelle::MailboxTransport>> transports;
    for (int n = 0; n < args.nodes; ++n)
      transports.push_back(args.nodes == 1
                               ? nullptr
                               : std::shared_ptr<estelle::MailboxTransport>(
                                     hub.endpoint(n)));
    std::vector<int> rc(static_cast<std::size_t>(args.nodes), 0);
    std::vector<std::thread> threads;
    for (int n = 0; n < args.nodes; ++n)
      threads.emplace_back([&, n] {
        rc[static_cast<std::size_t>(n)] =
            run_node(args, n, transports[static_cast<std::size_t>(n)]);
      });
    for (auto& t : threads) t.join();
    for (const int c : rc)
      if (c != 0) return c;
    return 0;
  }

  std::shared_ptr<estelle::MailboxTransport> transport;
  if (args.nodes > 1 && args.transport == "unix") {
    std::filesystem::create_directories(args.dir);
    auto mesh = estelle::StreamSocketTransport::unix_mesh(args.node,
                                                          args.nodes, args.dir);
    if (!mesh.ok()) {
      std::fprintf(stderr, "unix mesh: %s\n", mesh.error().message.c_str());
      return 1;
    }
    transport = std::move(mesh.value());
  } else if (args.nodes > 1 && args.transport == "tcp") {
    auto mesh = estelle::StreamSocketTransport::tcp_mesh(
        args.node, args.nodes, static_cast<std::uint16_t>(args.port),
        args.hosts);
    if (!mesh.ok()) {
      std::fprintf(stderr, "tcp mesh: %s\n", mesh.error().message.c_str());
      return 1;
    }
    transport = std::move(mesh.value());
  } else if (args.nodes > 1) {
    return usage(argv[0]);
  }
  return run_node(args, args.node, std::move(transport));
}
