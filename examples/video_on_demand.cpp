// Video-on-demand: the paper's motivating scenario (§1) in the Fig. 2 shape.
//
// One server ("the KSR1") holds a small catalogue; several clients browse it
// through the movie directory and stream different movies concurrently. The
// example prints a per-client report: what was found, what was played, and
// the delivered stream quality — including one client behind an impaired
// link, showing the control path staying intact while its stream degrades
// (Table 1's architectural separation).
//
// Run: ./video_on_demand
#include <cstdio>

#include "mcam/testbed.hpp"

using namespace mcam;
using core::Testbed;

namespace {

void preload(Testbed& bed, const std::string& title, std::uint64_t frames,
             double fps, directory::Format fmt) {
  directory::MovieEntry e;
  e.title = title;
  e.fps = fps;
  e.duration_frames = frames;
  e.format = fmt;
  e.location_host = bed.config().server_host;
  e.size_bytes = frames * 6000;
  e.rights = "public";
  (void)bed.server().directory().add(e);
}

}  // namespace

int main() {
  Testbed::Config cfg;
  cfg.clients = 3;
  Testbed bed(cfg);

  preload(bed, "news-1994-06-12", 100, 25.0, directory::Format::Mjpeg);
  preload(bed, "lecture-databases", 150, 25.0, directory::Format::Mpeg1);
  preload(bed, "campus-tour", 80, 20.0, directory::Format::Colormap);

  // Client 3 sits behind a congested lossy link — stream only; the control
  // connection is a separate stack and is unaffected.
  net::Impairments bad;
  bad.latency = common::SimTime::from_ms(8);
  bad.jitter = common::SimTime::from_ms(6);
  bad.loss = 0.12;
  bad.bandwidth_bps = 8e6;
  bed.network().set_link(bed.config().server_host, bed.client_host(2), bad);

  const char* wanted[3] = {"news-1994-06-12", "lecture-databases",
                           "campus-tour"};
  std::printf("catalogue on %s:\n", bed.config().server_host.c_str());
  for (const auto& movie :
       bed.server().directory().search(directory::Filter::all()))
    std::printf("  #%llu %-20s %s %.0ffps %llu frames\n",
                static_cast<unsigned long long>(movie.id),
                movie.title.c_str(), directory::format_name(movie.format),
                movie.fps,
                static_cast<unsigned long long>(movie.duration_frames));

  struct Session {
    core::McamClient client;
    mtp::StreamUserAgent* sua;
    std::uint64_t movie = 0;
  };
  std::vector<Session> sessions;

  for (int c = 0; c < 3; ++c) {
    core::McamClient client = bed.client(c);
    auto assoc = client.associate("viewer" + std::to_string(c + 1));
    if (!assoc.ok()) {
      std::fprintf(stderr, "client %d: associate failed\n", c);
      return 1;
    }
    auto select = client.select_movie(wanted[c]);
    mtp::StreamUserAgent& sua = bed.make_sua(c, 7000);
    auto play =
        client.play(select.value().movie_id, bed.client_host(c), 7000);
    std::printf("client %d: playing '%s' (stream %u)\n", c + 1, wanted[c],
                play.value().stream_id);
    sessions.push_back(
        Session{std::move(client), &sua, select.value().movie_id});
  }

  // Let all three streams run to completion (longest is 6s of content).
  bed.advance_streams(common::SimTime::from_s(8));

  std::printf("\n%-8s %-22s %9s %9s %8s %9s %8s\n", "client", "movie",
              "frames", "damaged", "loss%", "delay", "jitter");
  for (int c = 0; c < 3; ++c) {
    const mtp::ReceiverStats& s = sessions[static_cast<std::size_t>(c)]
                                      .sua->stats();
    std::printf("%-8d %-22s %9llu %9llu %7.1f%% %7.2fms %6.2fms\n", c + 1,
                wanted[c],
                static_cast<unsigned long long>(s.frames_complete),
                static_cast<unsigned long long>(s.frames_damaged),
                100.0 * (1.0 - s.packet_delivery_ratio()), s.mean_delay_ms,
                s.jitter_ms);
  }

  // Control plane still perfect for everyone, including client 3.
  std::printf("\ncontrol-plane check after streaming:\n");
  for (int c = 0; c < 3; ++c) {
    auto& session = sessions[static_cast<std::size_t>(c)];
    auto q = session.client.query_attributes(session.movie, {"title"});
    std::printf("  client %d query -> %s\n", c + 1,
                q.ok() ? q.value().attrs[0].value.c_str()
                       : q.error().message.c_str());
    (void)session.client.stop(session.movie);
    (void)session.client.release();
  }
  std::printf("server sessions remaining: %zu\n",
              bed.server().active_sessions());
  return 0;
}
