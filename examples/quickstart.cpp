// Quickstart: the smallest complete MCAM session.
//
// Builds the Fig. 2 world with one client and one server, then walks the
// MCAM service: associate → create a movie → query/modify its attributes →
// select → play it over the MTP CM-stream → stop → release.
//
// Run: ./quickstart
#include <cstdio>

#include "mcam/testbed.hpp"

using namespace mcam;
using core::Testbed;

int main() {
  Testbed bed(Testbed::Config{});
  core::McamClient client = bed.client(0);

  // 1. Associate (rides the P-CONNECT handshake through the generated
  //    presentation/session/transport stack).
  auto assoc = client.associate("alice");
  if (!assoc.ok()) {
    std::fprintf(stderr, "associate failed: %s\n",
                 assoc.error().message.c_str());
    return 1;
  }
  std::printf("associated: %s\n", assoc.value().diagnostic.c_str());

  // 2. Create a movie with attributes (stored in the movie directory).
  auto created = client.create_movie(
      "my-first-movie",
      {{"fps", "25"}, {"duration", "75"}, {"format", "mjpeg"}});
  const std::uint64_t movie = created.value().movie_id;
  std::printf("created movie id=%llu\n",
              static_cast<unsigned long long>(movie));

  // 3. Query and modify attributes (movie management).
  auto attrs = client.query_attributes(movie);
  std::printf("attributes:\n");
  for (const core::Attr& a : attrs.value().attrs)
    std::printf("  %-14s = %s\n", a.name.c_str(), a.value.c_str());
  (void)client.modify_attributes(movie, {{"rights", "public"}});

  // 4. Play: the server's Stream Provider Agent sends MTP frames to our
  //    Stream User Agent, over a network separate from the control stack.
  mtp::StreamUserAgent& sua = bed.make_sua(0, 7000);
  auto play = client.play(movie, bed.client_host(0), 7000);
  std::printf("playing on stream id=%u ...\n", play.value().stream_id);
  bed.advance_streams(common::SimTime::from_s(4));

  const mtp::ReceiverStats& stats = sua.stats();
  std::printf("received %llu frames (%llu bytes), mean delay %.2f ms\n",
              static_cast<unsigned long long>(stats.frames_complete),
              static_cast<unsigned long long>(stats.bytes_received),
              stats.mean_delay_ms);

  // 5. Stop and release.
  auto stop = client.stop(movie);
  std::printf("stopped at frame %llu\n",
              static_cast<unsigned long long>(stop.value().position));
  (void)client.release();
  std::printf("released; server sessions now: %zu\n",
              bed.server().active_sessions());
  return 0;
}
